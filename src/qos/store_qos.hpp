// Per-tenant store I/O QoS: weighted-fair arbitration + bandwidth
// reservations at every StoreService access link.
//
// The paper's stores serve whoever asks; once the platform multiplexes
// multi-tenant workloads over shared LocalStore/ObjectStore instances, one
// tenant's scan can starve another's interactive job at the store front end.
// A StoreQos interposes an admission arbiter in front of each store:
//
//  * every store fetch is submitted to the arbiter before the wire transfer
//    starts; the arbiter releases requests one at a time per store, pacing
//    the release stream at the store's (slightly derated) access-link
//    capacity, so under contention requests queue *at the arbiter* instead
//    of piling onto the wire;
//  * release order is weighted-fair (start-time fair queueing over virtual
//    finish tags of bytes/weight), so concurrent backlogged tenants split
//    the link in proportion to their share weights, and a tenant that goes
//    idle donates its share to the others (work conservation);
//  * reservation admission: "tenant A gets >= X bytes/sec on store S during
//    [t1, t2)" is granted or rejected at reserve() time against the link
//    capacity; a granted reservation gets its own release lane paced at the
//    reserved rate, and its tokens are carved out of the fair pool for the
//    whole window;
//  * per-(tenant, store) accounting: requests, released bytes, wait time,
//    throttle count, and the active span that yields achieved bandwidth —
//    plus per-tenant cache hit/miss counters fed by the middleware.
//
// The object is caller-owned (like CacheFleet / ReplicaSet) and shared
// across a workload's jobs; attach() binds it to a built platform. Nothing
// here is reachable unless RunOptions::qos points at an instance, so default
// runs stay byte-identical to the paper model.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "des/simulator.hpp"
#include "storage/data_layout.hpp"
#include "trace/trace.hpp"

namespace cloudburst::cluster {
class Platform;
}

namespace cloudburst::qos {

/// Dense tenant identity inside one StoreQos; id 0 is always the "system"
/// tenant that background traffic (replica repair) bills to.
using TenantId = std::uint32_t;
inline constexpr TenantId kSystemTenant = 0;
inline constexpr const char* kSystemTenantName = "system";

struct QosConfig {
  /// Relative share weight per tenant name; tenants not listed get
  /// default_weight. All configured weights must be > 0 — a config whose
  /// weights are all zero is rejected at construction (it would make every
  /// fair rate 0/0).
  std::map<std::string, double> tenant_weights;
  double default_weight = 1.0;
  /// Weight of the "system" tenant (replica repair transfers).
  double system_weight = 1.0;

  /// Fraction of the store's front bandwidth the fair pool paces at. Keeping
  /// the paced link slightly under-subscribed makes contention queue at the
  /// arbiter (where shares are enforced) instead of on the wire (where
  /// max-min flow sharing would override them).
  double pacing_factor = 0.9;

  /// Floor on the fair pool's pacing rate (bytes/sec) after reservations are
  /// carved out, so admission never stalls entirely.
  double min_fair_rate = 1e3;
};

/// One granted reservation: a bandwidth floor on a store during a window.
struct Reservation {
  TenantId tenant = 0;
  storage::StoreId store = 0;
  double bytes_per_sec = 0.0;
  double begin_seconds = 0.0;
  double end_seconds = 0.0;
};

/// Per-(tenant, store) I/O accounting.
struct TenantStoreStats {
  std::uint64_t requests = 0;   ///< submits (including pass-through)
  std::uint64_t bytes = 0;      ///< bytes released through the arbiter
  std::uint64_t throttled = 0;  ///< releases that waited in a queue
  double wait_seconds = 0.0;    ///< total submit-to-release wait
  double first_active_seconds = -1.0;  ///< first release (achieved-bw span)
  double last_active_seconds = 0.0;    ///< end of the last pacing slot

  /// Released bytes over the tenant's active span on this store.
  double achieved_bytes_per_sec() const {
    const double span = last_active_seconds - first_active_seconds;
    return (first_active_seconds >= 0.0 && span > 0.0)
               ? static_cast<double>(bytes) / span
               : 0.0;
  }
};

/// Per-tenant rollup surfaced in WorkloadResult.
struct TenantQosReport {
  bool active = false;  ///< tenant is registered with a StoreQos
  std::uint64_t store_requests = 0;
  std::uint64_t bytes = 0;
  std::uint64_t throttled = 0;
  double wait_seconds = 0.0;
  double achieved_bytes_per_sec = 0.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

class StoreQos {
 public:
  /// Validates the config: every weight (explicit, default, system) must be
  /// > 0; throws std::invalid_argument otherwise.
  explicit StoreQos(QosConfig config = {});

  const QosConfig& config() const { return config_; }

  /// Dense id for `name`, registering it on first use ("system" is id 0).
  TenantId tenant_id(const std::string& name);
  const std::string& tenant_name(TenantId id) const { return tenants_.at(id); }
  std::size_t tenant_count() const { return tenants_.size(); }
  double weight_of(TenantId id) const;

  /// Bind to a built platform: per-store access-link capacity comes from
  /// each site's StoreSpec::front_bandwidth. Re-attaching (iterative passes,
  /// workload jobs sharing the object) must present the same store count;
  /// scheduler state resets, reservations and stats survive.
  void attach(cluster::Platform& platform);
  /// Test seam: bind directly to a simulator and explicit capacities
  /// (bytes/sec; <= 0 = pass-through store).
  void bind(des::Simulator& sim, std::vector<double> store_capacities);
  bool attached() const { return sim_ != nullptr; }

  /// Optional event sink for ReservationGranted / ReservationRejected.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  // --- reservations ----------------------------------------------------------

  /// Admit "tenant gets >= bytes_per_sec on store during [begin, end)".
  /// Granted iff the store has a known capacity and, at every instant, the
  /// overlapping reserved rates (this one included) fit under the paced link
  /// minus the fair-pool floor. Returns false (and traces
  /// ReservationRejected) on over-commit; throws std::logic_error before
  /// attach()/bind() and std::invalid_argument on malformed arguments.
  bool reserve(const std::string& tenant, storage::StoreId store,
               double bytes_per_sec, double begin_seconds, double end_seconds);

  const std::vector<Reservation>& reservations() const { return reservations_; }
  std::uint32_t reservations_rejected() const { return rejected_; }

  /// Re-check every granted reservation against `platform`'s store
  /// capacities (run_distributed's up-front validation); throws
  /// std::invalid_argument when a reservation no longer fits.
  void validate_against(const cluster::Platform& platform) const;

  // --- arbitration -----------------------------------------------------------

  /// Fires when the request wins link share; `waited_seconds` is how long it
  /// queued (0 for immediate release).
  using Release = std::function<void(double waited_seconds)>;

  /// Gate a `bytes`-sized store access by `tenant` against `store`. Releases
  /// synchronously when the store is a pass-through (unknown capacity) or
  /// its arbiter is idle; otherwise the request queues in the tenant's
  /// reservation lane (if one is active now) or the weighted-fair queue.
  void submit(storage::StoreId store, TenantId tenant, std::uint64_t bytes,
              Release release);

  // --- cache accounting ------------------------------------------------------

  void note_cache_hit(TenantId tenant);
  void note_cache_miss(TenantId tenant);

  /// Cache capacity split for the explicitly-weighted tenants: each gets
  /// floor(capacity * weight / sum of configured weights). Tenants without a
  /// configured weight share the cache unbudgeted. Empty when the config
  /// names no tenants.
  std::map<TenantId, std::uint64_t> cache_budgets(std::uint64_t capacity_bytes);

  // --- accounting ------------------------------------------------------------

  /// Stats of `tenant` on `store`; nullptr when that pair never submitted.
  const TenantStoreStats* store_stats(TenantId tenant, storage::StoreId store) const;
  /// Rollup over all stores (plus the tenant's cache counters).
  TenantQosReport report(TenantId tenant) const;
  TenantQosReport report(const std::string& tenant) const;

  double store_capacity(storage::StoreId store) const;

 private:
  struct Pending {
    TenantId tenant = 0;
    std::uint64_t bytes = 0;
    double submit_seconds = 0.0;
    double start_tag = 0.0;
    double finish_tag = 0.0;
    std::uint64_t seq = 0;
    Release release;
  };
  struct LaneState {
    std::size_t reservation = 0;  ///< index into reservations_
    bool busy = false;
    std::deque<Pending> queue;
  };
  struct StoreState {
    double capacity = 0.0;
    bool busy = false;
    double vtime = 0.0;
    std::vector<Pending> heap;  ///< min-heap by (finish_tag, seq)
    std::unordered_map<TenantId, double> last_finish;
    std::vector<LaneState> lanes;
  };

  double now_seconds() const;
  /// Paced fair-pool rate right now: pacing_factor * capacity minus the
  /// rates of reservations whose window covers `now`, floored at
  /// min_fair_rate.
  double fair_rate(const StoreState& st, double now) const;
  int active_lane(const StoreState& st, TenantId tenant, double now) const;
  void pump_fair(storage::StoreId store);
  void pump_lane(storage::StoreId store, std::size_t lane);
  void record_release(TenantId tenant, storage::StoreId store, const Pending& p,
                      double now, double slot_seconds);
  TenantStoreStats& stats_slot(TenantId tenant, storage::StoreId store);
  /// Highest instantaneous reserved rate on `store` over [begin, end) with
  /// `extra` added to the overlap.
  double max_reserved_overlap(storage::StoreId store, double begin, double end,
                              double extra) const;
  void rebuild_lanes();
  void trace_reservation(bool granted, storage::StoreId store, double bytes_per_sec);

  QosConfig config_;
  des::Simulator* sim_ = nullptr;
  trace::Tracer* tracer_ = nullptr;

  std::vector<std::string> tenants_;  ///< index = TenantId; [0] = "system"
  std::unordered_map<std::string, TenantId> tenant_ids_;

  std::vector<StoreState> stores_;
  std::vector<Reservation> reservations_;
  std::uint32_t rejected_ = 0;
  std::uint64_t seq_ = 0;

  /// per_tenant_[tenant][store] -> stats; cache counters are per tenant.
  std::vector<std::map<storage::StoreId, TenantStoreStats>> per_tenant_;
  struct CacheCounters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  std::vector<CacheCounters> cache_counters_;
};

}  // namespace cloudburst::qos
