// The Map-Reduce programming API — the baseline the paper compares against
// (§III-A, Figure 1): map -> [combine] -> shuffle -> reduce.
//
// Keys are 64-bit integers; values are small double vectors, which covers
// the evaluation applications (knn: (distance, id); kmeans: point + count;
// pagerank: rank mass; wordcount: counts). The engine materializes the
// intermediate (key, value) pairs exactly as a Map-Reduce implementation
// must, so the memory/shuffle overheads the Generalized Reduction API avoids
// are real and measurable in bench/api_comparison.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace cloudburst::api {

struct KeyValue {
  std::uint64_t key = 0;
  std::vector<double> value;

  bool operator==(const KeyValue&) const = default;
};

/// Sink the map (and combine/reduce) functions emit into.
class Emitter {
 public:
  virtual ~Emitter() = default;
  virtual void emit(std::uint64_t key, std::vector<double> value) = 0;
};

class MRTask {
 public:
  virtual ~MRTask() = default;

  virtual std::string name() const = 0;
  virtual std::size_t unit_bytes() const = 0;

  /// Map `unit_count` consecutive units starting at `data`, emitting
  /// intermediate pairs.
  virtual void map(const std::byte* data, std::size_t unit_count, Emitter& emit) const = 0;

  /// Reduce all values observed for `key` into zero or more output pairs.
  virtual void reduce(std::uint64_t key, const std::vector<std::vector<double>>& values,
                      Emitter& emit) const = 0;

  /// Optional combiner; by default reuses reduce (valid whenever reduce is
  /// associative+commutative over partial value sets, true for our apps).
  virtual void combine(std::uint64_t key, const std::vector<std::vector<double>>& values,
                       Emitter& emit) const {
    reduce(key, values, emit);
  }

  /// Optional final pass over the reduced pairs (e.g. kmeans centroid
  /// division). Default: identity.
  virtual std::vector<KeyValue> finalize(std::vector<KeyValue> reduced) const {
    return reduced;
  }
};

}  // namespace cloudburst::api
