// Reusable reduction objects ("common combination functions already
// implemented in the generalized reduction system library", paper §III-A).
//
//  * VectorSumRobj / VectorMinRobj / VectorMaxRobj — fixed-length double
//    vectors merged elementwise (kmeans partial sums, pagerank rank mass).
//  * TopKMinRobj — k smallest (score, id) pairs (k-nearest-neighbors).
//  * HashCountRobj — open hash of uint64 -> count (wordcount-style).
//  * ConcatRobj — order-insensitive concatenation of fixed records.
#pragma once

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "api/reduction_object.hpp"

namespace cloudburst::api {

/// Elementwise fold of a fixed-length double vector; Op picks the fold.
enum class VectorFold { Sum, Min, Max };

class VectorFoldRobj final : public ReductionObject {
 public:
  VectorFoldRobj(std::size_t size, VectorFold fold);

  double& at(std::size_t i) { return values_.at(i); }
  double at(std::size_t i) const { return values_.at(i); }
  std::size_t size() const { return values_.size(); }
  const std::vector<double>& values() const { return values_; }
  std::vector<double>& values() { return values_; }

  /// Fold a single contribution into slot i (same rule as merge_from).
  void accumulate(std::size_t i, double v);

  RobjPtr clone_empty() const override;
  void merge_from(const ReductionObject& other) override;
  std::uint64_t byte_size() const override;
  void serialize(BufferWriter& out) const override;
  void deserialize(BufferReader& in) override;

 private:
  double identity() const;
  VectorFold fold_;
  std::vector<double> values_;
};

inline RobjPtr make_vector_sum(std::size_t size) {
  return std::make_unique<VectorFoldRobj>(size, VectorFold::Sum);
}
inline RobjPtr make_vector_min(std::size_t size) {
  return std::make_unique<VectorFoldRobj>(size, VectorFold::Min);
}
inline RobjPtr make_vector_max(std::size_t size) {
  return std::make_unique<VectorFoldRobj>(size, VectorFold::Max);
}

/// Keeps the k smallest (score, id) pairs seen, ties broken by id so the
/// result is independent of processing order.
class TopKMinRobj final : public ReductionObject {
 public:
  struct Entry {
    double score;
    std::uint64_t id;
    bool operator<(const Entry& o) const {
      return score != o.score ? score < o.score : id < o.id;
    }
    bool operator==(const Entry&) const = default;
  };

  explicit TopKMinRobj(std::size_t k);

  void offer(double score, std::uint64_t id);
  /// Entries in ascending score order.
  std::vector<Entry> sorted_entries() const;
  std::size_t k() const { return k_; }
  std::size_t count() const { return heap_.size(); }

  RobjPtr clone_empty() const override;
  void merge_from(const ReductionObject& other) override;
  std::uint64_t byte_size() const override;
  void serialize(BufferWriter& out) const override;
  void deserialize(BufferReader& in) override;

 private:
  std::size_t k_;
  std::vector<Entry> heap_;  ///< max-heap on Entry ordering (worst at front)
};

/// uint64 key -> double count/sum accumulator with additive merge.
class HashCountRobj final : public ReductionObject {
 public:
  HashCountRobj() = default;

  void add(std::uint64_t key, double amount) { counts_[key] += amount; }
  double get(std::uint64_t key) const;
  std::size_t distinct_keys() const { return counts_.size(); }
  const std::unordered_map<std::uint64_t, double>& counts() const { return counts_; }

  RobjPtr clone_empty() const override;
  void merge_from(const ReductionObject& other) override;
  std::uint64_t byte_size() const override;
  void serialize(BufferWriter& out) const override;
  void deserialize(BufferReader& in) override;

 private:
  std::unordered_map<std::uint64_t, double> counts_;
};

/// Order-insensitive concatenation of fixed-size records; the merge sorts so
/// results do not depend on merge order.
class ConcatRobj final : public ReductionObject {
 public:
  explicit ConcatRobj(std::size_t record_doubles) : record_doubles_(record_doubles) {}

  void append(const double* record);
  std::size_t records() const { return data_.size() / record_doubles_; }
  const std::vector<double>& data() const { return data_; }
  /// Canonical (sorted) view; call after all merges.
  std::vector<double> sorted_records() const;

  RobjPtr clone_empty() const override;
  void merge_from(const ReductionObject& other) override;
  std::uint64_t byte_size() const override;
  void serialize(BufferWriter& out) const override;
  void deserialize(BufferReader& in) override;

 private:
  std::size_t record_doubles_;
  std::vector<double> data_;
};

}  // namespace cloudburst::api
