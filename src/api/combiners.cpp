#include "api/combiners.hpp"

#include <algorithm>
#include <stdexcept>

namespace cloudburst::api {

namespace {

template <typename T>
const T& cast_other(const ReductionObject& other, const char* what) {
  const auto* p = dynamic_cast<const T*>(&other);
  if (!p) throw std::invalid_argument(std::string("merge_from: type mismatch for ") + what);
  return *p;
}

}  // namespace

// --- VectorFoldRobj ---------------------------------------------------------

VectorFoldRobj::VectorFoldRobj(std::size_t size, VectorFold fold)
    : fold_(fold), values_(size, 0.0) {
  std::fill(values_.begin(), values_.end(), identity());
}

double VectorFoldRobj::identity() const {
  switch (fold_) {
    case VectorFold::Sum: return 0.0;
    case VectorFold::Min: return std::numeric_limits<double>::infinity();
    case VectorFold::Max: return -std::numeric_limits<double>::infinity();
  }
  return 0.0;
}

void VectorFoldRobj::accumulate(std::size_t i, double v) {
  double& slot = values_.at(i);
  switch (fold_) {
    case VectorFold::Sum: slot += v; break;
    case VectorFold::Min: slot = std::min(slot, v); break;
    case VectorFold::Max: slot = std::max(slot, v); break;
  }
}

RobjPtr VectorFoldRobj::clone_empty() const {
  return std::make_unique<VectorFoldRobj>(values_.size(), fold_);
}

void VectorFoldRobj::merge_from(const ReductionObject& other) {
  const auto& o = cast_other<VectorFoldRobj>(other, "VectorFoldRobj");
  if (o.values_.size() != values_.size() || o.fold_ != fold_) {
    throw std::invalid_argument("VectorFoldRobj: shape mismatch in merge");
  }
  for (std::size_t i = 0; i < values_.size(); ++i) accumulate(i, o.values_[i]);
}

std::uint64_t VectorFoldRobj::byte_size() const {
  return sizeof(std::uint64_t) + values_.size() * sizeof(double);
}

void VectorFoldRobj::serialize(BufferWriter& out) const {
  out.write_u8(static_cast<std::uint8_t>(fold_));
  out.write_pod_vector(values_);
}

void VectorFoldRobj::deserialize(BufferReader& in) {
  fold_ = static_cast<VectorFold>(in.read_u8());
  values_ = in.read_pod_vector<double>();
}

// --- TopKMinRobj -------------------------------------------------------------

TopKMinRobj::TopKMinRobj(std::size_t k) : k_(k) {
  if (k == 0) throw std::invalid_argument("TopKMinRobj: k must be > 0");
  heap_.reserve(k);
}

void TopKMinRobj::offer(double score, std::uint64_t id) {
  const Entry e{score, id};
  if (heap_.size() < k_) {
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end());
    return;
  }
  if (e < heap_.front()) {  // strictly better than the current worst
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.back() = e;
    std::push_heap(heap_.begin(), heap_.end());
  }
}

std::vector<TopKMinRobj::Entry> TopKMinRobj::sorted_entries() const {
  std::vector<Entry> out = heap_;
  std::sort(out.begin(), out.end());
  return out;
}

RobjPtr TopKMinRobj::clone_empty() const { return std::make_unique<TopKMinRobj>(k_); }

void TopKMinRobj::merge_from(const ReductionObject& other) {
  const auto& o = cast_other<TopKMinRobj>(other, "TopKMinRobj");
  for (const Entry& e : o.heap_) offer(e.score, e.id);
}

std::uint64_t TopKMinRobj::byte_size() const {
  return sizeof(std::uint64_t) + heap_.size() * sizeof(Entry);
}

void TopKMinRobj::serialize(BufferWriter& out) const {
  out.write_u64(k_);
  out.write_u64(heap_.size());
  for (const Entry& e : heap_) {
    out.write_f64(e.score);
    out.write_u64(e.id);
  }
}

void TopKMinRobj::deserialize(BufferReader& in) {
  k_ = in.read_u64();
  const std::uint64_t n = in.read_u64();
  heap_.clear();
  heap_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const double score = in.read_f64();
    const std::uint64_t id = in.read_u64();
    heap_.push_back(Entry{score, id});
  }
  std::make_heap(heap_.begin(), heap_.end());
}

// --- HashCountRobj -----------------------------------------------------------

double HashCountRobj::get(std::uint64_t key) const {
  const auto it = counts_.find(key);
  return it == counts_.end() ? 0.0 : it->second;
}

RobjPtr HashCountRobj::clone_empty() const { return std::make_unique<HashCountRobj>(); }

void HashCountRobj::merge_from(const ReductionObject& other) {
  const auto& o = cast_other<HashCountRobj>(other, "HashCountRobj");
  for (const auto& [k, v] : o.counts_) counts_[k] += v;
}

std::uint64_t HashCountRobj::byte_size() const {
  return sizeof(std::uint64_t) + counts_.size() * (sizeof(std::uint64_t) + sizeof(double));
}

void HashCountRobj::serialize(BufferWriter& out) const {
  // Sorted order: serialized form is canonical regardless of hash layout.
  std::vector<std::pair<std::uint64_t, double>> items(counts_.begin(), counts_.end());
  std::sort(items.begin(), items.end());
  out.write_u64(items.size());
  for (const auto& [k, v] : items) {
    out.write_u64(k);
    out.write_f64(v);
  }
}

void HashCountRobj::deserialize(BufferReader& in) {
  counts_.clear();
  const std::uint64_t n = in.read_u64();
  counts_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t k = in.read_u64();
    counts_[k] = in.read_f64();
  }
}

// --- ConcatRobj ---------------------------------------------------------------

void ConcatRobj::append(const double* record) {
  data_.insert(data_.end(), record, record + record_doubles_);
}

std::vector<double> ConcatRobj::sorted_records() const {
  // Sort record-wise (lexicographic) for a canonical view.
  const std::size_t n = records();
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return std::lexicographical_compare(
        data_.begin() + a * record_doubles_, data_.begin() + (a + 1) * record_doubles_,
        data_.begin() + b * record_doubles_, data_.begin() + (b + 1) * record_doubles_);
  });
  std::vector<double> out;
  out.reserve(data_.size());
  for (std::size_t i : order) {
    out.insert(out.end(), data_.begin() + i * record_doubles_,
               data_.begin() + (i + 1) * record_doubles_);
  }
  return out;
}

RobjPtr ConcatRobj::clone_empty() const { return std::make_unique<ConcatRobj>(record_doubles_); }

void ConcatRobj::merge_from(const ReductionObject& other) {
  const auto& o = cast_other<ConcatRobj>(other, "ConcatRobj");
  if (o.record_doubles_ != record_doubles_) {
    throw std::invalid_argument("ConcatRobj: record size mismatch in merge");
  }
  data_.insert(data_.end(), o.data_.begin(), o.data_.end());
}

std::uint64_t ConcatRobj::byte_size() const {
  return 2 * sizeof(std::uint64_t) + data_.size() * sizeof(double);
}

void ConcatRobj::serialize(BufferWriter& out) const {
  out.write_u64(record_doubles_);
  out.write_pod_vector(data_);
}

void ConcatRobj::deserialize(BufferReader& in) {
  record_doubles_ = in.read_u64();
  data_ = in.read_pod_vector<double>();
}

}  // namespace cloudburst::api
