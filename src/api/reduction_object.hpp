// Reduction objects.
//
// The central abstraction of the Generalized Reduction API (paper §III-A):
// an application-defined accumulator that is
//  * updated in place after each data element (local reduction),
//  * cloned empty per processing thread / node,
//  * merged pairwise during the global reduction phase,
//  * serialized when it crosses cluster boundaries (its byte size is what
//    the middleware charges to the network — pagerank's very large robj is
//    the source of its sync overhead).
// Memory allocation and access are managed by the runtime, per the paper;
// applications only define the update and merge rules.
#pragma once

#include <cstdint>
#include <memory>

#include "common/serialize.hpp"

namespace cloudburst::api {

class ReductionObject {
 public:
  virtual ~ReductionObject() = default;

  /// A fresh object of the same shape holding the reduction identity
  /// (so merge(clone_empty(), x) == x).
  virtual std::unique_ptr<ReductionObject> clone_empty() const = 0;

  /// Global reduction step: fold `other` into *this. Must be associative
  /// and commutative across objects produced from disjoint element sets —
  /// the runtime chooses the merge order.
  virtual void merge_from(const ReductionObject& other) = 0;

  /// Serialized size; used for robj transfer cost accounting.
  virtual std::uint64_t byte_size() const = 0;

  virtual void serialize(BufferWriter& out) const = 0;
  virtual void deserialize(BufferReader& in) = 0;
};

using RobjPtr = std::unique_ptr<ReductionObject>;

}  // namespace cloudburst::api
