// The Generalized Reduction programming API (paper §III-A).
//
// An application supplies three things:
//  * a reduction object (create_robj),
//  * a local reduction: process a run of data units, folding each element
//    into the robj immediately — no intermediate (key, value) pairs,
//  * a global reduction: ReductionObject::merge_from (or one of the library
//    combiners).
// The runtime owns everything else: the order units are processed in, how
// many units form a cache-sized group, which thread/node/cluster processes
// which chunk, and when robj copies are merged.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "api/reduction_object.hpp"

namespace cloudburst::api {

class GRTask {
 public:
  virtual ~GRTask() = default;

  virtual std::string name() const = 0;

  /// Size of one atomic data unit in bytes (the layout's element stride).
  virtual std::size_t unit_bytes() const = 0;

  /// A fresh reduction object (the identity element).
  virtual RobjPtr create_robj() const = 0;

  /// Local reduction: fold `unit_count` consecutive units starting at `data`
  /// into `robj`. Must be insensitive to the order in which disjoint unit
  /// runs are processed (the runtime decides scheduling).
  virtual void process(const std::byte* data, std::size_t unit_count,
                       ReductionObject& robj) const = 0;

  /// Optional post-processing once the global reduction is complete (e.g.
  /// kmeans divides sums by counts). Default: nothing.
  virtual void finalize(ReductionObject& robj) const { (void)robj; }
};

}  // namespace cloudburst::api
