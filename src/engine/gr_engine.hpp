// Shared-memory Generalized Reduction engine.
//
// The in-process form of the paper's processing structure (Figure 1, right):
// each worker thread owns a private reduction-object copy, claims cache-sized
// unit groups on demand (the same pooling idea the middleware uses between
// nodes), folds every element into its robj immediately, and the engine
// merges the per-thread robjs at the end. No intermediate (key, value)
// pairs, no shuffle.
#pragma once

#include <cstddef>

#include "api/generalized_reduction.hpp"
#include "engine/memory_dataset.hpp"

namespace cloudburst::engine {

struct GrEngineOptions {
  std::size_t threads = 1;
  /// Bytes of data per processing group; sized to the worker's cache
  /// (paper: "the data units maximize the cache utilization").
  std::size_t cache_bytes = 1 << 20;
};

struct GrRunStats {
  double wall_seconds = 0.0;
  std::size_t groups_processed = 0;
  std::size_t robj_merges = 0;
  std::uint64_t robj_bytes = 0;  ///< serialized size of the final robj
};

/// Run `task` over `data` and return the finalized global reduction object.
api::RobjPtr gr_run(const api::GRTask& task, const MemoryDataset& data,
                    const GrEngineOptions& options, GrRunStats* stats = nullptr);

}  // namespace cloudburst::engine
