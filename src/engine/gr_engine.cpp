#include "engine/gr_engine.hpp"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hpp"

namespace cloudburst::engine {

api::RobjPtr gr_run(const api::GRTask& task, const MemoryDataset& data,
                    const GrEngineOptions& options, GrRunStats* stats) {
  if (options.threads == 0) throw std::invalid_argument("gr_run: threads must be > 0");
  if (data.unit_bytes() != task.unit_bytes()) {
    throw std::invalid_argument("gr_run: dataset unit size does not match task");
  }

  const auto start = std::chrono::steady_clock::now();

  const std::size_t group_units = data.units_per_group(options.cache_bytes);
  const std::size_t total_units = data.units();
  const std::size_t groups = total_units == 0 ? 0 : (total_units + group_units - 1) / group_units;

  // Per-thread private robj copies; workers claim groups from a shared
  // counter so faster threads naturally take more work.
  std::vector<api::RobjPtr> robjs(options.threads);
  std::atomic<std::size_t> next_group{0};
  std::atomic<std::size_t> processed_groups{0};

  {
    ThreadPool pool(options.threads);
    pool.run_on_all(options.threads, [&](std::size_t worker) {
      api::RobjPtr robj = task.create_robj();
      while (true) {
        const std::size_t g = next_group.fetch_add(1, std::memory_order_relaxed);
        if (g >= groups) break;
        const std::size_t begin = g * group_units;
        const std::size_t count = std::min(group_units, total_units - begin);
        task.process(data.unit(begin), count, *robj);
        processed_groups.fetch_add(1, std::memory_order_relaxed);
      }
      robjs[worker] = std::move(robj);
    });
  }

  // Global reduction: fold the per-thread copies into one.
  api::RobjPtr result = std::move(robjs[0]);
  std::size_t merges = 0;
  for (std::size_t i = 1; i < robjs.size(); ++i) {
    result->merge_from(*robjs[i]);
    ++merges;
  }
  task.finalize(*result);

  if (stats) {
    stats->wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    stats->groups_processed = processed_groups.load();
    stats->robj_merges = merges;
    stats->robj_bytes = result->byte_size();
  }
  return result;
}

}  // namespace cloudburst::engine
