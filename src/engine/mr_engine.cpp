#include "engine/mr_engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <unordered_map>

#include "common/thread_pool.hpp"

namespace cloudburst::engine {

namespace {

using api::Emitter;
using api::KeyValue;

class VectorEmitter final : public Emitter {
 public:
  void emit(std::uint64_t key, std::vector<double> value) override {
    pairs.push_back(KeyValue{key, std::move(value)});
  }
  std::vector<KeyValue> pairs;
};

std::uint64_t payload_bytes(const std::vector<KeyValue>& pairs) {
  std::uint64_t total = 0;
  for (const auto& kv : pairs) {
    total += sizeof(kv.key) + kv.value.size() * sizeof(double);
  }
  return total;
}

/// Group-by-key then apply `fold` (combine or reduce); returns the folded pairs.
std::vector<KeyValue> fold_by_key(
    const api::MRTask& task, std::vector<KeyValue> pairs, bool reduce_phase) {
  // Sort-based grouping: deterministic and cache-friendly for large buffers.
  std::sort(pairs.begin(), pairs.end(), [](const KeyValue& a, const KeyValue& b) {
    return a.key < b.key;
  });
  VectorEmitter out;
  std::vector<std::vector<double>> values;
  std::size_t i = 0;
  while (i < pairs.size()) {
    const std::uint64_t key = pairs[i].key;
    values.clear();
    while (i < pairs.size() && pairs[i].key == key) {
      values.push_back(std::move(pairs[i].value));
      ++i;
    }
    if (reduce_phase) {
      task.reduce(key, values, out);
    } else {
      task.combine(key, values, out);
    }
  }
  return std::move(out.pairs);
}

std::size_t partition_of(std::uint64_t key, std::size_t partitions) {
  // Fibonacci hashing spreads sequential keys across partitions.
  return static_cast<std::size_t>((key * 0x9e3779b97f4a7c15ULL) >> 32) % partitions;
}

}  // namespace

std::vector<KeyValue> mr_run(const api::MRTask& task, const MemoryDataset& data,
                             const MrEngineOptions& options, MrRunStats* stats) {
  if (options.threads == 0) throw std::invalid_argument("mr_run: threads must be > 0");
  if (data.unit_bytes() != task.unit_bytes()) {
    throw std::invalid_argument("mr_run: dataset unit size does not match task");
  }
  const std::size_t partitions =
      options.reduce_partitions ? options.reduce_partitions : options.threads;

  const auto t0 = std::chrono::steady_clock::now();

  // ---- map (+ optional combiner) ------------------------------------------
  const std::size_t group_units = std::max<std::size_t>(options.map_group_units, 1);
  const std::size_t total_units = data.units();
  const std::size_t groups = total_units == 0 ? 0 : (total_units + group_units - 1) / group_units;

  std::vector<std::vector<KeyValue>> worker_pairs(options.threads);
  std::atomic<std::size_t> next_group{0};
  std::atomic<std::size_t> pairs_emitted{0};
  std::atomic<std::size_t> peak_pairs{0};
  std::atomic<std::int64_t> live_pairs{0};

  auto note_live = [&](std::int64_t delta) {
    const std::int64_t now = live_pairs.fetch_add(delta, std::memory_order_relaxed) + delta;
    const auto now_sz = now > 0 ? static_cast<std::size_t>(now) : 0;
    std::size_t prev = peak_pairs.load(std::memory_order_relaxed);
    while (now_sz > prev && !peak_pairs.compare_exchange_weak(prev, now_sz)) {
    }
  };

  {
    ThreadPool pool(options.threads);
    pool.run_on_all(options.threads, [&](std::size_t worker) {
      VectorEmitter buffer;
      while (true) {
        const std::size_t g = next_group.fetch_add(1, std::memory_order_relaxed);
        if (g >= groups) break;
        const std::size_t begin = g * group_units;
        const std::size_t count = std::min(group_units, total_units - begin);
        const std::size_t before = buffer.pairs.size();
        task.map(data.unit(begin), count, buffer);
        const std::size_t emitted = buffer.pairs.size() - before;
        pairs_emitted.fetch_add(emitted, std::memory_order_relaxed);
        note_live(static_cast<std::ptrdiff_t>(emitted));

        if (options.use_combiner && buffer.pairs.size() >= options.combine_flush_pairs) {
          const std::size_t held = buffer.pairs.size();
          buffer.pairs = fold_by_key(task, std::move(buffer.pairs), /*reduce_phase=*/false);
          note_live(static_cast<std::ptrdiff_t>(buffer.pairs.size()) -
                    static_cast<std::ptrdiff_t>(held));
        }
      }
      if (options.use_combiner && !buffer.pairs.empty()) {
        const std::size_t held = buffer.pairs.size();
        buffer.pairs = fold_by_key(task, std::move(buffer.pairs), /*reduce_phase=*/false);
        note_live(static_cast<std::ptrdiff_t>(buffer.pairs.size()) -
                  static_cast<std::ptrdiff_t>(held));
      }
      worker_pairs[worker] = std::move(buffer.pairs);
    });
  }
  const auto t1 = std::chrono::steady_clock::now();

  // ---- shuffle: hash-partition every worker's pairs -------------------------
  std::vector<std::vector<KeyValue>> buckets(partitions);
  std::size_t shuffled = 0;
  std::uint64_t shuffle_bytes = 0;
  for (auto& wp : worker_pairs) {
    shuffled += wp.size();
    shuffle_bytes += payload_bytes(wp);
    for (auto& kv : wp) {
      buckets[partition_of(kv.key, partitions)].push_back(std::move(kv));
    }
    wp.clear();
    wp.shrink_to_fit();
  }
  const auto t2 = std::chrono::steady_clock::now();

  // ---- reduce ---------------------------------------------------------------
  std::vector<std::vector<KeyValue>> reduced(partitions);
  {
    ThreadPool pool(options.threads);
    pool.parallel_for(partitions, 1, [&](std::size_t p) {
      reduced[p] = fold_by_key(task, std::move(buckets[p]), /*reduce_phase=*/true);
    });
  }

  std::vector<KeyValue> result;
  for (auto& r : reduced) {
    result.insert(result.end(), std::make_move_iterator(r.begin()),
                  std::make_move_iterator(r.end()));
  }
  std::sort(result.begin(), result.end(),
            [](const KeyValue& a, const KeyValue& b) { return a.key < b.key; });
  result = task.finalize(std::move(result));
  const auto t3 = std::chrono::steady_clock::now();

  if (stats) {
    stats->wall_seconds = std::chrono::duration<double>(t3 - t0).count();
    stats->map_seconds = std::chrono::duration<double>(t1 - t0).count();
    stats->shuffle_seconds = std::chrono::duration<double>(t2 - t1).count();
    stats->reduce_seconds = std::chrono::duration<double>(t3 - t2).count();
    stats->pairs_emitted = pairs_emitted.load();
    stats->pairs_shuffled = shuffled;
    stats->peak_intermediate_pairs = peak_pairs.load();
    stats->shuffle_bytes = shuffle_bytes;
  }
  return result;
}

}  // namespace cloudburst::engine
