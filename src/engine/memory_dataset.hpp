// In-memory dataset for the real (shared-memory) engines.
//
// A flat byte buffer of fixed-size units — the in-process analogue of a
// chunk read into a slave's memory. The engines split it into cache-sized
// unit groups exactly as the middleware's reduction layer does (paper
// §III-B "Data Organization").
#pragma once

#include <cstddef>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace cloudburst::engine {

class MemoryDataset {
 public:
  MemoryDataset(std::vector<std::byte> bytes, std::size_t unit_bytes)
      : bytes_(std::move(bytes)), unit_bytes_(unit_bytes) {
    if (unit_bytes_ == 0) throw std::invalid_argument("unit_bytes must be > 0");
    if (bytes_.size() % unit_bytes_ != 0) {
      throw std::invalid_argument("dataset size must be a multiple of unit_bytes");
    }
  }

  /// Build from a vector of trivially-copyable records.
  template <typename T>
  static MemoryDataset from_records(const std::vector<T>& records) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> bytes(records.size() * sizeof(T));
    std::memcpy(bytes.data(), records.data(), bytes.size());
    return MemoryDataset(std::move(bytes), sizeof(T));
  }

  std::size_t unit_bytes() const { return unit_bytes_; }
  std::size_t units() const { return bytes_.size() / unit_bytes_; }
  std::size_t size_bytes() const { return bytes_.size(); }

  const std::byte* unit(std::size_t index) const { return bytes_.data() + index * unit_bytes_; }
  const std::byte* data() const { return bytes_.data(); }

  /// Number of units per cache-sized processing group (>= 1).
  std::size_t units_per_group(std::size_t cache_bytes) const {
    const std::size_t n = cache_bytes / unit_bytes_;
    return n == 0 ? 1 : n;
  }

 private:
  std::vector<std::byte> bytes_;
  std::size_t unit_bytes_;
};

}  // namespace cloudburst::engine
