// Shared-memory Map-Reduce engine — the baseline processing structure.
//
// Faithful to Figure 1 (left/middle): map emits intermediate (key, value)
// pairs into per-worker buffers; with the combiner enabled, buffers are
// group-by-key combined whenever they exceed the flush threshold; the
// shuffle hash-partitions pairs across reduce partitions; reduce groups by
// key and folds. The engine tracks the peak number of live intermediate
// pairs and shuffle volume, which is what bench/api_comparison uses to
// reproduce the paper's argument for the Generalized Reduction API.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "api/mapreduce.hpp"
#include "engine/memory_dataset.hpp"

namespace cloudburst::engine {

struct MrEngineOptions {
  std::size_t threads = 1;
  bool use_combiner = false;
  /// Combine the map-side buffer whenever it holds at least this many pairs.
  std::size_t combine_flush_pairs = 1 << 16;
  /// Number of reduce partitions (0 = same as threads).
  std::size_t reduce_partitions = 0;
  /// Units mapped per map invocation (cache-sized groups).
  std::size_t map_group_units = 4096;
};

struct MrRunStats {
  double wall_seconds = 0.0;
  double map_seconds = 0.0;
  double shuffle_seconds = 0.0;
  double reduce_seconds = 0.0;
  std::size_t pairs_emitted = 0;          ///< total pairs produced by map
  std::size_t pairs_shuffled = 0;         ///< pairs crossing the shuffle
  std::size_t peak_intermediate_pairs = 0;///< max pairs alive at once
  std::uint64_t shuffle_bytes = 0;        ///< payload bytes crossing the shuffle
};

/// Run `task` over `data`; returns reduced pairs sorted by key.
std::vector<api::KeyValue> mr_run(const api::MRTask& task, const MemoryDataset& data,
                                  const MrEngineOptions& options, MrRunStats* stats = nullptr);

}  // namespace cloudburst::engine
