// Link and identifier types for the flow-level network model.
#pragma once

#include <cstdint>
#include <string>

#include "des/sim_time.hpp"

namespace cloudburst::net {

using LinkId = std::uint32_t;
using SiteId = std::uint32_t;
using EndpointId = std::uint32_t;
using FlowId = std::uint64_t;

constexpr FlowId kInvalidFlow = static_cast<FlowId>(-1);

/// A unidirectional transmission resource: a NIC, a disk channel, a LAN
/// backbone, or the WAN between the local cluster and the cloud. Capacity is
/// shared max-min fairly between the flows crossing it.
struct Link {
  std::string name;
  double bandwidth = 0.0;          ///< bytes per second (nominal)
  des::SimDuration latency = 0;    ///< one-way propagation delay
  double bytes_carried = 0.0;      ///< cumulative settled bytes (stats)
  /// Fault-injection multiplier on bandwidth: 1 = healthy, 0 = link down
  /// (crossing flows stall at rate 0 until restored), in between = degraded.
  double capacity_factor = 1.0;

  double effective_bandwidth() const { return bandwidth * capacity_factor; }
};

}  // namespace cloudburst::net
