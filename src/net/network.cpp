#include "net/network.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/logging.hpp"

namespace cloudburst::net {

namespace {
// Residual bytes below this count as "delivered" — absorbs double rounding
// from settling at recomputed rates.
constexpr double kByteEpsilon = 1e-6;
}  // namespace

SiteId Network::add_site(std::string name) {
  sites_.push_back(std::move(name));
  return static_cast<SiteId>(sites_.size() - 1);
}

LinkId Network::add_link(std::string name, double bandwidth_bytes_per_sec,
                         des::SimDuration latency) {
  if (bandwidth_bytes_per_sec <= 0.0) {
    throw std::invalid_argument("link bandwidth must be positive: " + name);
  }
  if (latency < 0) throw std::invalid_argument("link latency must be >= 0: " + name);
  links_.push_back(Link{std::move(name), bandwidth_bytes_per_sec, latency, 0});
  return static_cast<LinkId>(links_.size() - 1);
}

EndpointId Network::add_endpoint(std::string name, SiteId site) {
  if (site >= sites_.size()) throw std::out_of_range("unknown site for endpoint " + name);
  endpoints_.push_back(Endpoint{std::move(name), site, {}});
  return static_cast<EndpointId>(endpoints_.size() - 1);
}

void Network::set_access_path(EndpointId ep, std::vector<LinkId> links) {
  endpoints_.at(ep).access = std::move(links);
}

void Network::set_route(SiteId from, SiteId to, std::vector<LinkId> links) {
  routes_[{from, to}] = std::move(links);
}

void Network::set_route_symmetric(SiteId a, SiteId b, std::vector<LinkId> links) {
  routes_[{a, b}] = links;
  std::reverse(links.begin(), links.end());
  routes_[{b, a}] = std::move(links);
}

std::vector<LinkId> Network::path(EndpointId src, EndpointId dst) const {
  if (src == dst) return {};  // loopback: no links, no latency
  const Endpoint& s = endpoints_.at(src);
  const Endpoint& d = endpoints_.at(dst);
  std::vector<LinkId> p = s.access;
  if (s.site != d.site) {
    const auto it = routes_.find({s.site, d.site});
    if (it == routes_.end()) {
      throw std::runtime_error("no route from site " + sites_.at(s.site) + " to " +
                               sites_.at(d.site));
    }
    p.insert(p.end(), it->second.begin(), it->second.end());
  }
  p.insert(p.end(), d.access.rbegin(), d.access.rend());
  return p;
}

des::SimDuration Network::path_latency(EndpointId src, EndpointId dst) const {
  des::SimDuration total = 0;
  for (LinkId l : path(src, dst)) total += links_.at(l).latency;
  return total;
}

FlowId Network::start_flow(EndpointId src, EndpointId dst, std::uint64_t bytes,
                           double rate_cap, std::function<void()> on_complete) {
  const FlowId id = next_flow_id_++;
  Flow flow;
  flow.id = id;
  flow.links = path(src, dst);
  flow.remaining = static_cast<double>(bytes);
  flow.rate_cap = rate_cap;
  flow.on_complete = std::move(on_complete);
  flow.last_update = sim_.now();

  const des::SimDuration latency = path_latency(src, dst);
  auto [it, inserted] = flows_.emplace(id, std::move(flow));
  (void)inserted;
  it->second.activation = sim_.schedule(latency, [this, id] { activate_flow(id); });
  return id;
}

void Network::activate_flow(FlowId id) {
  const auto it = flows_.find(id);
  if (it == flows_.end()) return;  // cancelled during latency phase
  settle();
  it->second.active = true;
  it->second.last_update = sim_.now();
  if (it->second.remaining <= kByteEpsilon) {
    finish_flow(id);
    return;
  }
  rebalance();
}

void Network::cancel_flow(FlowId id) {
  const auto it = flows_.find(id);
  if (it == flows_.end()) return;
  settle();
  it->second.activation.cancel();
  it->second.completion.cancel();
  flows_.erase(it);
  rebalance();
}

double Network::flow_rate(FlowId id) const {
  const auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.rate;
}

void Network::settle() {
  const des::SimTime now = sim_.now();
  for (auto& [id, flow] : flows_) {
    if (!flow.active) continue;
    const double dt = des::to_seconds(now - flow.last_update);
    if (dt > 0.0 && flow.rate > 0.0) {
      const double moved = std::min(flow.remaining, flow.rate * dt);
      flow.remaining -= moved;
      for (LinkId l : flow.links) {
        links_[l].bytes_carried += moved;
      }
    }
    flow.last_update = now;
  }
  last_settle_ = now;
}

void Network::rebalance() {
  // Progressive filling (water-filling): raise every unfrozen flow's rate in
  // lock-step until a link saturates or a flow hits its cap; freeze and
  // repeat. Produces the max-min fair allocation with per-flow caps.
  std::vector<double> link_residual(links_.size());
  for (std::size_t l = 0; l < links_.size(); ++l) link_residual[l] = links_[l].bandwidth;

  std::vector<Flow*> unfrozen;
  for (auto& [id, flow] : flows_) {
    if (!flow.active) continue;
    flow.rate = 0.0;
    unfrozen.push_back(&flow);
  }

  std::vector<std::uint32_t> link_load(links_.size(), 0);
  while (!unfrozen.empty()) {
    std::fill(link_load.begin(), link_load.end(), 0);
    for (const Flow* f : unfrozen) {
      for (LinkId l : f->links) ++link_load[l];
    }

    // Largest uniform rate increment every unfrozen flow can take.
    double inc = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < links_.size(); ++l) {
      if (link_load[l] > 0) {
        inc = std::min(inc, link_residual[l] / static_cast<double>(link_load[l]));
      }
    }
    for (const Flow* f : unfrozen) {
      if (f->rate_cap > 0.0) inc = std::min(inc, f->rate_cap - f->rate);
    }
    if (!std::isfinite(inc)) {
      // Flows with empty paths (same endpoint) — treat as infinitely fast;
      // give them an effectively unbounded rate.
      for (Flow* f : unfrozen) f->rate = 1e18;
      break;
    }
    inc = std::max(inc, 0.0);

    for (Flow* f : unfrozen) {
      f->rate += inc;
      for (LinkId l : f->links) link_residual[l] -= inc;
    }

    // Freeze flows at their cap or crossing a saturated link.
    std::vector<Flow*> still;
    still.reserve(unfrozen.size());
    for (Flow* f : unfrozen) {
      bool frozen = f->rate_cap > 0.0 && f->rate >= f->rate_cap - 1e-12;
      if (!frozen) {
        for (LinkId l : f->links) {
          if (link_residual[l] <= 1e-9 * links_[l].bandwidth) {
            frozen = true;
            break;
          }
        }
      }
      if (!frozen) still.push_back(f);
    }
    if (still.size() == unfrozen.size()) {
      // Numerical stall guard: freeze everything rather than loop forever.
      break;
    }
    unfrozen.swap(still);
  }

  // Re-arm completion events at the new rates.
  for (auto& [id, flow] : flows_) {
    if (!flow.active) continue;
    flow.completion.cancel();
    if (flow.remaining <= kByteEpsilon) {
      const FlowId fid = id;
      flow.completion = sim_.schedule(0, [this, fid] { finish_flow(fid); });
    } else if (flow.rate > 0.0) {
      const double secs = flow.remaining / flow.rate;
      const FlowId fid = id;
      flow.completion =
          sim_.schedule(std::max<des::SimDuration>(des::from_seconds(secs), 0),
                        [this, fid] { finish_flow(fid); });
    }
    // rate == 0 (fully starved): no completion until a rebalance frees capacity.
  }
}

void Network::finish_flow(FlowId id) {
  const auto it = flows_.find(id);
  if (it == flows_.end()) return;
  settle();
  Flow& flow = it->second;
  if (flow.remaining > kByteEpsilon) {
    // Rates changed since this event was armed; re-estimate.
    if (flow.rate > 0.0) {
      const double secs = flow.remaining / flow.rate;
      const FlowId fid = id;
      flow.completion = sim_.schedule(
          std::max<des::SimDuration>(des::from_seconds(secs), 1), [this, fid] { finish_flow(fid); });
    }
    return;
  }
  auto callback = std::move(flow.on_complete);
  flow.completion.cancel();
  flows_.erase(it);
  rebalance();
  if (callback) callback();
}

}  // namespace cloudburst::net
