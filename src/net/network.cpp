#include "net/network.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/logging.hpp"

namespace cloudburst::net {

namespace {
// Residual bytes below this count as "delivered" — absorbs double rounding
// from settling at recomputed rates.
constexpr double kByteEpsilon = 1e-6;
// Rate given to flows with an empty path and no cap (loopback transfers):
// effectively instantaneous.
constexpr double kInfiniteRate = 1e18;
}  // namespace

SiteId Network::add_site(std::string name) {
  sites_.push_back(std::move(name));
  return static_cast<SiteId>(sites_.size() - 1);
}

LinkId Network::add_link(std::string name, double bandwidth_bytes_per_sec,
                         des::SimDuration latency) {
  if (bandwidth_bytes_per_sec <= 0.0) {
    throw std::invalid_argument("link bandwidth must be positive: " + name);
  }
  if (latency < 0) throw std::invalid_argument("link latency must be >= 0: " + name);
  links_.push_back(Link{std::move(name), bandwidth_bytes_per_sec, latency, 0});
  link_active_.emplace_back();
  link_epoch_.push_back(0);
  water_.emplace_back();
  return static_cast<LinkId>(links_.size() - 1);
}

EndpointId Network::add_endpoint(std::string name, SiteId site) {
  if (site >= sites_.size()) throw std::out_of_range("unknown site for endpoint " + name);
  endpoints_.push_back(Endpoint{std::move(name), site, {}});
  return static_cast<EndpointId>(endpoints_.size() - 1);
}

void Network::set_access_path(EndpointId ep, std::vector<LinkId> links) {
  endpoints_.at(ep).access = std::move(links);
}

void Network::set_route(SiteId from, SiteId to, std::vector<LinkId> links) {
  routes_[{from, to}] = std::move(links);
}

void Network::set_route_symmetric(SiteId a, SiteId b, std::vector<LinkId> links) {
  routes_[{a, b}] = links;
  std::reverse(links.begin(), links.end());
  routes_[{b, a}] = std::move(links);
}

std::vector<LinkId> Network::path(EndpointId src, EndpointId dst) const {
  if (src == dst) return {};  // loopback: no links, no latency
  const Endpoint& s = endpoints_.at(src);
  const Endpoint& d = endpoints_.at(dst);
  std::vector<LinkId> p = s.access;
  if (s.site != d.site) {
    const auto it = routes_.find({s.site, d.site});
    if (it == routes_.end()) {
      throw std::runtime_error("no route from site " + sites_.at(s.site) + " to " +
                               sites_.at(d.site));
    }
    p.insert(p.end(), it->second.begin(), it->second.end());
  }
  p.insert(p.end(), d.access.rbegin(), d.access.rend());
  return p;
}

des::SimDuration Network::path_latency(EndpointId src, EndpointId dst) const {
  des::SimDuration total = 0;
  for (LinkId l : path(src, dst)) total += links_.at(l).latency;
  return total;
}

FlowId Network::start_flow(EndpointId src, EndpointId dst, std::uint64_t bytes,
                           double rate_cap, des::EventFn on_complete) {
  const FlowId id = next_flow_id_++;
  Flow flow;
  flow.id = id;
  flow.src = src;
  flow.dst = dst;
  flow.links = path(src, dst);
  flow.remaining = static_cast<double>(bytes);
  flow.rate_cap = rate_cap;
  flow.on_complete = std::move(on_complete);
  flow.last_update = sim_.now();

  const des::SimDuration latency = path_latency(src, dst);
  auto [it, inserted] = flows_.emplace(id, std::move(flow));
  (void)inserted;
  it->second.activation = sim_.schedule(latency, [this, id] { activate_flow(id); });
  return id;
}

void Network::attach_to_links(Flow& flow) {
  flow.link_pos.resize(flow.links.size());
  for (std::size_t i = 0; i < flow.links.size(); ++i) {
    auto& list = link_active_[flow.links[i]];
    flow.link_pos[i] = static_cast<std::uint32_t>(list.size());
    list.push_back(ActiveRef{flow.id, static_cast<std::uint32_t>(i)});
  }
}

void Network::detach_from_links(Flow& flow) {
  for (std::size_t i = 0; i < flow.links.size(); ++i) {
    auto& list = link_active_[flow.links[i]];
    const std::uint32_t pos = flow.link_pos[i];
    const ActiveRef moved = list.back();
    list[pos] = moved;
    list.pop_back();
    if (moved.flow != flow.id) {
      flows_.find(moved.flow)->second.link_pos[moved.slot] = pos;
    } else if (moved.slot != i) {
      flow.link_pos[moved.slot] = pos;  // path crosses this link twice
    }
  }
}

void Network::collect_component(const std::vector<LinkId>& seed_links) {
  ++epoch_;
  comp_flows_.clear();
  comp_links_.clear();
  bfs_stack_.clear();
  const auto push_link = [this](LinkId l) {
    if (link_epoch_[l] != epoch_) {
      link_epoch_[l] = epoch_;
      comp_links_.push_back(l);
      bfs_stack_.push_back(l);
    }
  };
  for (LinkId l : seed_links) push_link(l);
  while (!bfs_stack_.empty()) {
    const LinkId l = bfs_stack_.back();
    bfs_stack_.pop_back();
    for (const ActiveRef& ref : link_active_[l]) {
      Flow& flow = flows_.find(ref.flow)->second;
      if (flow.visit_epoch == epoch_) continue;
      flow.visit_epoch = epoch_;
      comp_flows_.push_back(&flow);
      for (LinkId l2 : flow.links) push_link(l2);
    }
  }
  std::sort(comp_flows_.begin(), comp_flows_.end(),
            [](const Flow* a, const Flow* b) { return a->id < b->id; });
  std::sort(comp_links_.begin(), comp_links_.end());
}

void Network::settle_flows(const std::vector<Flow*>& flows) {
  const des::SimTime now = sim_.now();
  for (Flow* flow : flows) {
    if (!flow->active) continue;
    const double dt = des::to_seconds(now - flow->last_update);
    if (dt > 0.0 && flow->rate > 0.0) {
      const double moved = std::min(flow->remaining, flow->rate * dt);
      flow->remaining -= moved;
      for (LinkId l : flow->links) {
        links_[l].bytes_carried += moved;
      }
    }
    flow->last_update = now;
  }
}

void Network::recompute_and_rearm(std::vector<Flow*>& comp) {
  if (rebalance_mode_ == RebalanceMode::kGlobalReference) {
    // Reference mode: recompute everything. The solver below is a pure
    // function of each connected component, so this must reproduce the
    // scoped result bit-for-bit (see header).
    comp.clear();
    for (auto& [id, flow] : flows_) {
      if (flow.active) comp.push_back(&flow);
    }
  }
  if (comp.empty()) return;

  // Freeze-event water-filling. All unfrozen flows share one rising level r;
  // link l saturates at level (bandwidth - committed) / count. Each round
  // jumps r straight to the smallest binding constraint (a link saturation
  // level or a flow cap) and freezes every flow pinned there, so each round
  // freezes at least one flow and rates come out of a single division per
  // link instead of O(rounds) incremental passes.
  ++water_epoch_;
  water_links_.clear();
  for (const Flow* flow : comp) {
    for (LinkId l : flow->links) {
      LinkWater& w = water_[l];
      if (w.epoch != water_epoch_) {
        w.committed = 0.0;
        w.count = 0;
        w.epoch = water_epoch_;
        water_links_.push_back(l);
      }
      ++w.count;  // a path crossing a link twice contends twice, as before
    }
  }

  unfrozen_ = comp;  // sorted by id => deterministic freeze order
  while (!unfrozen_.empty()) {
    double r = std::numeric_limits<double>::infinity();
    for (LinkId l : water_links_) {
      LinkWater& w = water_[l];
      if (w.count == 0) continue;
      w.level = std::max(
          (links_[l].effective_bandwidth() - w.committed) / static_cast<double>(w.count),
          0.0);
      r = std::min(r, w.level);
    }
    for (const Flow* flow : unfrozen_) {
      if (flow->rate_cap > 0.0) r = std::min(r, flow->rate_cap);
    }
    if (!std::isfinite(r)) {
      // Only link-less, uncapped flows remain (loopback): infinitely fast.
      for (Flow* flow : unfrozen_) flow->next_rate = kInfiniteRate;
      break;
    }

    still_.clear();
    bool froze = false;
    for (Flow* flow : unfrozen_) {
      bool frozen = flow->rate_cap > 0.0 && flow->rate_cap <= r;
      if (!frozen) {
        for (LinkId l : flow->links) {
          const LinkWater& w = water_[l];
          // level is this round's snapshot; it equals r exactly when this
          // link is the binding constraint (both came out of the same min).
          if (w.level <= r) {
            frozen = true;
            break;
          }
        }
      }
      if (frozen) {
        flow->next_rate = r;
        froze = true;
        for (LinkId l : flow->links) {
          LinkWater& w = water_[l];
          w.committed += r;
          --w.count;
        }
      } else {
        still_.push_back(flow);
      }
    }
    if (!froze) {
      // Unreachable by construction (r always binds some flow); freeze the
      // rest at the current level rather than loop forever.
      for (Flow* flow : unfrozen_) flow->next_rate = r;
      break;
    }
    unfrozen_.swap(still_);
  }

  // Re-arm completion events, but only where the rate actually changed: an
  // unchanged rate means the armed completion time is still correct, and
  // skipping the cancel/re-schedule churn is where the scoped rebalance
  // saves most of its event traffic.
  for (Flow* flow : comp) {
    const double new_rate = flow->next_rate;
    if (new_rate == flow->rate) continue;
    flow->rate = new_rate;
    flow->completion.cancel();
    const FlowId fid = flow->id;
    if (flow->remaining <= kByteEpsilon) {
      flow->completion = sim_.schedule(0, [this, fid] { finish_flow(fid); });
    } else if (new_rate > 0.0) {
      const double secs = flow->remaining / new_rate;
      flow->completion =
          sim_.schedule(std::max<des::SimDuration>(des::from_seconds(secs), 1),
                        [this, fid] { finish_flow(fid); });
    }
    // rate == 0 (fully starved): no completion until a rebalance frees capacity.
  }
}

void Network::activate_flow(FlowId id) {
  const auto it = flows_.find(id);
  if (it == flows_.end()) return;  // cancelled during latency phase
  Flow& flow = it->second;
  flow.active = true;
  flow.last_update = sim_.now();
  attach_to_links(flow);
  collect_component(flow.links);  // finds `flow` itself via its links
  if (flow.links.empty()) comp_flows_.push_back(&flow);  // loopback: own component
  settle_flows(comp_flows_);
  if (flow.remaining <= kByteEpsilon) {
    finish_flow(id);
    return;
  }
  recompute_and_rearm(comp_flows_);
}

double Network::cancel_flow(FlowId id) {
  const auto it = flows_.find(id);
  if (it == flows_.end()) return 0.0;
  Flow& flow = it->second;
  flow.activation.cancel();
  flow.completion.cancel();
  if (!flow.active) {
    // Latency phase: the flow never held bandwidth, nothing to rebalance.
    const double unmoved = flow.remaining;
    flows_.erase(it);
    return unmoved;
  }
  collect_component(flow.links);
  if (flow.links.empty()) comp_flows_.push_back(&flow);
  settle_flows(comp_flows_);
  const double unmoved = flow.remaining;
  detach_from_links(flow);
  comp_flows_.erase(std::find(comp_flows_.begin(), comp_flows_.end(), &flow));
  flows_.erase(it);
  recompute_and_rearm(comp_flows_);
  return unmoved;
}

std::size_t Network::cancel_flows_with_endpoint(EndpointId ep) {
  // Collect first: cancel_flow mutates flows_, and each cancellation settles
  // and rebalances its own component, so the per-link active lists stay
  // consistent throughout. flows_ is id-ordered => deterministic teardown.
  std::vector<FlowId> doomed;
  for (const auto& [id, flow] : flows_) {
    if (flow.src == ep || flow.dst == ep) doomed.push_back(id);
  }
  for (FlowId id : doomed) cancel_flow(id);
  return doomed.size();
}

void Network::set_link_capacity_factor(LinkId id, double factor) {
  if (factor < 0.0) {
    throw std::invalid_argument("link capacity factor must be >= 0");
  }
  Link& link = links_.at(id);
  if (link.capacity_factor == factor) return;
  // Settle the affected component at the old rates before the capacity
  // changes, then recompute. A factor of 0 starves crossing flows to rate 0:
  // recompute_and_rearm cancels their completion events and they stall until
  // a later rebalance (e.g. restoring the link) frees capacity.
  collect_component({id});
  settle_flows(comp_flows_);
  link.capacity_factor = factor;
  recompute_and_rearm(comp_flows_);
}

double Network::flow_rate(FlowId id) const {
  const auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.rate;
}

double Network::flow_remaining(FlowId id) const {
  const auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.remaining;
}

void Network::finish_flow(FlowId id) {
  const auto it = flows_.find(id);
  if (it == flows_.end()) return;
  Flow& flow = it->second;
  collect_component(flow.links);
  if (flow.links.empty()) comp_flows_.push_back(&flow);
  settle_flows(comp_flows_);
  if (flow.remaining > kByteEpsilon) {
    // Rates changed since this event was armed; re-estimate.
    if (flow.rate > 0.0) {
      const double secs = flow.remaining / flow.rate;
      const FlowId fid = id;
      flow.completion =
          sim_.schedule(std::max<des::SimDuration>(des::from_seconds(secs), 1),
                        [this, fid] { finish_flow(fid); });
    }
    return;
  }
  auto callback = std::move(flow.on_complete);
  flow.completion.cancel();
  detach_from_links(flow);
  comp_flows_.erase(std::find(comp_flows_.begin(), comp_flows_.end(), &flow));
  flows_.erase(it);
  recompute_and_rearm(comp_flows_);
  if (callback) callback();
}

}  // namespace cloudburst::net
