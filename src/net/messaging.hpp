// Typed message passing on top of the flow model.
//
// Middleware actors (head/master/slave) exchange small control messages and
// large reduction-object payloads. A Mailbox binds an endpoint to a handler;
// Postman serializes nothing — payloads are moved through the callback — but
// charges the declared byte size to the network, so control traffic and robj
// exchanges contend with data retrieval exactly as in the paper's system.
#pragma once

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "net/network.hpp"

namespace cloudburst::net {

template <typename Message>
class Postman {
 public:
  explicit Postman(Network& network) : network_(network) {}

  using Handler = std::function<void(EndpointId from, Message msg)>;

  /// Bind `handler` to receive messages addressed to `ep`.
  void register_mailbox(EndpointId ep, Handler handler) {
    if (mailboxes_.size() <= ep) mailboxes_.resize(ep + 1);
    mailboxes_[ep] = std::move(handler);
  }

  /// Send `msg` from src to dst, charging `bytes` on the network path.
  /// Delivery happens when the simulated transfer completes. The payload is
  /// moved into the flow's completion callback (EventFn is move-only), so a
  /// send costs no allocation beyond the flow itself for small messages.
  void send(EndpointId src, EndpointId dst, std::uint64_t bytes, Message msg) {
    network_.start_flow(src, dst, bytes, /*rate_cap=*/0.0,
                        [this, src, dst, msg = std::move(msg)]() mutable {
                          deliver(src, dst, std::move(msg));
                        });
  }

  Network& network() { return network_; }

 private:
  void deliver(EndpointId from, EndpointId to, Message msg) {
    if (to < mailboxes_.size() && mailboxes_[to]) {
      mailboxes_[to](from, std::move(msg));
    }
  }

  Network& network_;
  std::vector<Handler> mailboxes_;
};

}  // namespace cloudburst::net
