// Flow-level network simulation with max-min fair bandwidth sharing.
//
// Model
// -----
// The platform is a set of *sites* (the local cluster, the cloud, storage
// services). Every *endpoint* (a node NIC, the S3 front end, the storage
// node's disk channel) is attached to one site through an ordered list of
// access links; sites are connected by routes (ordered link lists). The path
// of a transfer is:
//
//     access(src) + route(site(src) -> site(dst)) + reverse(access(dst))
//
// A *flow* carries `bytes` along its path. After the path's total latency it
// becomes active and drains at its max-min fair rate; every flow arrival or
// departure triggers a re-balance (progressive filling / water-filling),
// which also re-estimates completion times. Flows may carry an optional
// per-flow rate cap — this is how the S3 model expresses its per-connection
// throughput limit without dedicating a simulated link per connection.
//
// Scoped rebalancing
// ------------------
// A flow arrival or departure can only change the rates of flows it shares
// bandwidth with, directly or transitively. Each link keeps the list of
// active flows crossing it, so a mutation walks the *connected component*
// of the affected links (flows <-> links), settles exactly those flows,
// recomputes their max-min rates with a freeze-event water-filling pass
// (O(component) instead of O(all flows x all links) per filling round), and
// re-arms completion events only for flows whose rate actually changed.
// Disjoint traffic — e.g. independent sites, or the thousands of concurrent
// chunk fetches that never meet on a link — pays nothing for each other's
// churn.
//
// The per-component solver is a pure function of the component's (sorted)
// flows, caps and link bandwidths, so recomputing an unaffected component
// reproduces its current rates bit-for-bit. RebalanceMode::kGlobalReference
// exploits that: it recomputes *every* active flow on each mutation, which
// must be byte-identical to the scoped result — the randomized differential
// test in tests/test_network_perf.cpp drives both modes through the same
// operation sequence and asserts exactly that.
//
// Everything is deterministic: component flows are processed in id order,
// and completion events inherit the DES kernel's (time, sequence) total
// ordering.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "des/simulator.hpp"
#include "net/link.hpp"

namespace cloudburst::net {

class Network {
 public:
  explicit Network(des::Simulator& sim) : sim_(sim) {}

  // --- topology construction ---------------------------------------------

  SiteId add_site(std::string name);
  LinkId add_link(std::string name, double bandwidth_bytes_per_sec,
                  des::SimDuration latency);
  EndpointId add_endpoint(std::string name, SiteId site);

  /// Links crossed from the endpoint to its site's router (may be empty for
  /// an endpoint sitting directly on the site fabric).
  void set_access_path(EndpointId ep, std::vector<LinkId> links);

  /// Directed route between two sites. Routes within a site are implicit
  /// (empty). Call twice for asymmetric paths; set_route_symmetric for the
  /// common case.
  void set_route(SiteId from, SiteId to, std::vector<LinkId> links);
  void set_route_symmetric(SiteId a, SiteId b, std::vector<LinkId> links);

  // --- transfers -----------------------------------------------------------

  /// Begin moving `bytes` from src to dst. `rate_cap` in bytes/sec limits
  /// this single flow (0 = unlimited). `on_complete` fires when the last
  /// byte arrives. Returns a FlowId usable with cancel_flow/flow_rate.
  FlowId start_flow(EndpointId src, EndpointId dst, std::uint64_t bytes,
                    double rate_cap, des::EventFn on_complete);

  /// Abort an in-progress flow; its completion callback never fires.
  /// Harmless if the flow already finished. Returns the flow's un-moved
  /// bytes, settled as of the cancellation instant (0 if unknown/finished).
  double cancel_flow(FlowId id);

  /// Abort every flow whose source or destination is `ep` (completion
  /// callbacks never fire). Used when an endpoint dies mid-transfer — the
  /// flows must settle and leave the per-link active lists, not stall
  /// forever holding bandwidth. Returns the number of flows cancelled.
  std::size_t cancel_flows_with_endpoint(EndpointId ep);

  // --- fault injection -----------------------------------------------------

  /// Scale a link's capacity: 1 restores nominal bandwidth, 0 takes the link
  /// down (crossing flows drop to rate 0 and stall — their traffic is
  /// delayed, not lost), intermediate values model degradation. Rebalances
  /// the affected component immediately.
  void set_link_capacity_factor(LinkId id, double factor);

  // --- introspection (tests, stats) ---------------------------------------

  /// Current fair-share rate (bytes/sec); 0 while in the latency phase or if
  /// the flow is unknown/finished.
  double flow_rate(FlowId id) const;

  /// Bytes the flow still has to drain (settled as of the last rebalance);
  /// 0 if the flow is unknown/finished.
  double flow_remaining(FlowId id) const;

  std::size_t active_flows() const { return flows_.size(); }

  std::vector<LinkId> path(EndpointId src, EndpointId dst) const;
  des::SimDuration path_latency(EndpointId src, EndpointId dst) const;

  const Link& link(LinkId id) const { return links_.at(id); }
  SiteId site_of(EndpointId ep) const { return endpoints_.at(ep).site; }
  std::size_t link_count() const { return links_.size(); }

  /// Test hook (see "Scoped rebalancing" above): kGlobalReference recomputes
  /// every active flow on each mutation instead of just the affected
  /// connected component. Results must be bit-identical to kScoped.
  enum class RebalanceMode { kScoped, kGlobalReference };
  void set_rebalance_mode_for_test(RebalanceMode mode) { rebalance_mode_ = mode; }

 private:
  struct Endpoint {
    std::string name;
    SiteId site;
    std::vector<LinkId> access;
  };

  struct Flow {
    FlowId id;
    EndpointId src = 0;
    EndpointId dst = 0;
    std::vector<LinkId> links;
    double remaining;  ///< bytes still to drain once active
    double rate_cap;   ///< 0 = uncapped
    double rate = 0.0;
    double next_rate = 0.0;  ///< scratch for the water-filling pass
    bool active = false;     ///< false during the latency phase
    des::SimTime last_update = 0;
    des::EventHandle completion;
    des::EventHandle activation;
    des::EventFn on_complete;
    /// For each links[i]: this flow's position in link_active_[links[i]]
    /// (back-pointer for O(1) swap-remove).
    std::vector<std::uint32_t> link_pos;
    std::uint64_t visit_epoch = 0;  ///< component-BFS visited stamp
  };

  /// One active-flow registration on a link: the flow plus which of the
  /// flow's path slots this entry belongs to (paths may repeat a link).
  struct ActiveRef {
    FlowId flow;
    std::uint32_t slot;
  };

  /// Per-link scratch for the freeze-event water-filling pass, reset lazily
  /// via `epoch` (no O(links) clearing per rebalance).
  struct LinkWater {
    double committed = 0.0;  ///< sum of frozen flow rates crossing the link
    double level = 0.0;      ///< saturation level snapshot for this round
    std::uint32_t count = 0; ///< unfrozen flows crossing the link
    std::uint64_t epoch = 0;
  };

  /// Register/unregister an active flow on its path's link lists.
  void attach_to_links(Flow& flow);
  void detach_from_links(Flow& flow);

  /// Gather the connected component (active flows <-> links) reachable from
  /// `seed_links` into comp_flows_/comp_links_, sorted by id.
  void collect_component(const std::vector<LinkId>& seed_links);

  /// Charge elapsed drain time to the given flows; updates link stats.
  /// Must run before any of their rates change.
  void settle_flows(const std::vector<Flow*>& flows);

  /// Max-min fair rates for `comp` (sorted by id; in kGlobalReference mode
  /// the argument is replaced by all active flows) and re-arm completion
  /// events for flows whose rate changed.
  void recompute_and_rearm(std::vector<Flow*>& comp);

  void activate_flow(FlowId id);
  void finish_flow(FlowId id);

  des::Simulator& sim_;
  std::vector<std::string> sites_;
  std::vector<Link> links_;
  std::vector<Endpoint> endpoints_;
  std::map<std::pair<SiteId, SiteId>, std::vector<LinkId>> routes_;
  std::map<FlowId, Flow> flows_;  // id order => deterministic iteration
  FlowId next_flow_id_ = 0;

  RebalanceMode rebalance_mode_ = RebalanceMode::kScoped;

  std::vector<std::vector<ActiveRef>> link_active_;  // parallel to links_
  std::vector<std::uint64_t> link_epoch_;            // parallel to links_
  std::vector<LinkWater> water_;                     // parallel to links_
  std::uint64_t epoch_ = 0;        ///< component-BFS stamp
  std::uint64_t water_epoch_ = 0;  ///< water-filling scratch stamp

  // Scratch buffers reused across mutations (never live across a callback).
  std::vector<Flow*> comp_flows_;
  std::vector<LinkId> comp_links_;
  std::vector<LinkId> water_links_;
  std::vector<LinkId> bfs_stack_;
  std::vector<Flow*> unfrozen_;
  std::vector<Flow*> still_;
};

}  // namespace cloudburst::net
