// Flow-level network simulation with max-min fair bandwidth sharing.
//
// Model
// -----
// The platform is a set of *sites* (the local cluster, the cloud, storage
// services). Every *endpoint* (a node NIC, the S3 front end, the storage
// node's disk channel) is attached to one site through an ordered list of
// access links; sites are connected by routes (ordered link lists). The path
// of a transfer is:
//
//     access(src) + route(site(src) -> site(dst)) + reverse(access(dst))
//
// A *flow* carries `bytes` along its path. After the path's total latency it
// becomes active and drains at its max-min fair rate; every flow arrival or
// departure triggers a re-balance (progressive filling / water-filling),
// which also re-estimates all completion times. Flows may carry an optional
// per-flow rate cap — this is how the S3 model expresses its per-connection
// throughput limit without dedicating a simulated link per connection.
//
// Everything is deterministic: flows are kept in id order, and completion
// events inherit the DES kernel's (time, sequence) total ordering.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "des/simulator.hpp"
#include "net/link.hpp"

namespace cloudburst::net {

class Network {
 public:
  explicit Network(des::Simulator& sim) : sim_(sim) {}

  // --- topology construction ---------------------------------------------

  SiteId add_site(std::string name);
  LinkId add_link(std::string name, double bandwidth_bytes_per_sec,
                  des::SimDuration latency);
  EndpointId add_endpoint(std::string name, SiteId site);

  /// Links crossed from the endpoint to its site's router (may be empty for
  /// an endpoint sitting directly on the site fabric).
  void set_access_path(EndpointId ep, std::vector<LinkId> links);

  /// Directed route between two sites. Routes within a site are implicit
  /// (empty). Call twice for asymmetric paths; set_route_symmetric for the
  /// common case.
  void set_route(SiteId from, SiteId to, std::vector<LinkId> links);
  void set_route_symmetric(SiteId a, SiteId b, std::vector<LinkId> links);

  // --- transfers -----------------------------------------------------------

  /// Begin moving `bytes` from src to dst. `rate_cap` in bytes/sec limits
  /// this single flow (0 = unlimited). `on_complete` fires when the last
  /// byte arrives. Returns a FlowId usable with cancel_flow/flow_rate.
  FlowId start_flow(EndpointId src, EndpointId dst, std::uint64_t bytes,
                    double rate_cap, std::function<void()> on_complete);

  /// Abort an in-progress flow; its completion callback never fires.
  /// Harmless if the flow already finished.
  void cancel_flow(FlowId id);

  // --- introspection (tests, stats) ---------------------------------------

  /// Current fair-share rate (bytes/sec); 0 while in the latency phase or if
  /// the flow is unknown/finished.
  double flow_rate(FlowId id) const;

  std::size_t active_flows() const { return flows_.size(); }

  std::vector<LinkId> path(EndpointId src, EndpointId dst) const;
  des::SimDuration path_latency(EndpointId src, EndpointId dst) const;

  const Link& link(LinkId id) const { return links_.at(id); }
  SiteId site_of(EndpointId ep) const { return endpoints_.at(ep).site; }
  std::size_t link_count() const { return links_.size(); }

 private:
  struct Endpoint {
    std::string name;
    SiteId site;
    std::vector<LinkId> access;
  };

  struct Flow {
    FlowId id;
    std::vector<LinkId> links;
    double remaining;  ///< bytes still to drain once active
    double rate_cap;   ///< 0 = uncapped
    double rate = 0.0;
    bool active = false;  ///< false during the latency phase
    des::SimTime last_update = 0;
    des::EventHandle completion;
    des::EventHandle activation;
    std::function<void()> on_complete;
  };

  /// Charge elapsed drain time to every active flow; updates link stats.
  void settle();

  /// Recompute max-min fair rates and re-arm completion events. Must be
  /// called with flows settled.
  void rebalance();

  void activate_flow(FlowId id);
  void finish_flow(FlowId id);

  des::Simulator& sim_;
  std::vector<std::string> sites_;
  std::vector<Link> links_;
  std::vector<Endpoint> endpoints_;
  std::map<std::pair<SiteId, SiteId>, std::vector<LinkId>> routes_;
  std::map<FlowId, Flow> flows_;  // id order => deterministic iteration
  FlowId next_flow_id_ = 0;
  des::SimTime last_settle_ = 0;
};

}  // namespace cloudburst::net
