#include "cluster/instance_types.hpp"

#include <stdexcept>

#include "common/units.hpp"

namespace cloudburst::cluster {

using namespace cloudburst::units;

const std::vector<InstanceType>& ec2_catalog_2011() {
  // Speeds: 0.365 per ECU (calibrated from the paper's m1.large balancing);
  // NICs: standard instances shipped ~gigabit, compute-optimized better.
  static const std::vector<InstanceType> catalog = {
      {"m1.small", 1, 0.365, MBps(60), 0.085},
      {"m1.large", 2, 0.730, MBps(160), 0.340},
      {"m1.xlarge", 4, 0.730, MBps(200), 0.680},
      {"c1.medium", 2, 0.913, MBps(120), 0.170},
      {"c1.xlarge", 8, 0.913, MBps(250), 0.680},
  };
  return catalog;
}

const InstanceType& instance_type(const std::string& name) {
  for (const auto& t : ec2_catalog_2011()) {
    if (t.name == name) return t;
  }
  throw std::invalid_argument("unknown instance type: " + name);
}

PlatformSpec paper_testbed_typed(unsigned local_cores, const InstanceType& type,
                                 unsigned count) {
  PlatformSpec spec = PlatformSpec::paper_testbed(local_cores, 0);
  spec.cloud() = ClusterSpec::uniform("cloud", count, NodeSpec{type.cores, type.core_speed},
                                    type.nic_bandwidth,
                                    des::from_seconds(us(200)));
  return spec;
}

}  // namespace cloudburst::cluster
