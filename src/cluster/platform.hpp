// Platform: the simulated deployment the middleware runs on.
//
// A platform is N *sites*. Every site hosts a compute cluster (possibly
// empty) and, optionally, a co-located storage service — either a disk-backed
// storage node sitting directly on the site fabric or an S3-style object
// store reachable through a cloud-internal fabric. Sites are connected by a
// wide-area network: one physical WAN link per site pair, parameterized by a
// platform-wide default plus per-pair overrides.
//
//     [site0 nodes]--NIC--(site0)---WAN---(site1)--NIC--[site1 nodes]
//     [disk store]---------^  \             |  \--fabric--[object store]
//                              \---WAN---(site2)--NIC--[site2 nodes] ...
//
// Intra-site paths cross only the two NICs involved; cross-site paths cross
// the pair's WAN link. A fabric-attached object store is reached through the
// fabric from its own site and through the owner's WAN link from everywhere
// else (the store's front end is on the public internet, the fabric is the
// provider-internal shortcut). All constants live in PlatformSpec so benches
// can sweep them (WAN bandwidth ablation, etc.).
//
// The paper's two-sided deployment (local cluster + EC2/S3) is simply the
// two-site instance produced by PlatformSpec::paper_testbed(); kLocalSite and
// kCloudSite are thin aliases for its site indices.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "des/simulator.hpp"
#include "net/network.hpp"
#include "storage/fault.hpp"
#include "storage/local_store.hpp"
#include "storage/object_store.hpp"

namespace cloudburst::cluster {

/// Runtime index of a compute cluster (== its site) within the platform.
using ClusterId = std::uint32_t;
constexpr ClusterId kInvalidCluster = static_cast<ClusterId>(-1);

/// Thin two-sided aliases: site 0 is the organization's cluster, site 1 the
/// cloud provider, exactly as in the paper's testbed.
constexpr ClusterId kLocalSite = 0;
constexpr ClusterId kCloudSite = 1;

struct NodeSpec {
  unsigned cores = 1;
  /// Per-core throughput relative to the reference core the AppProfiles are
  /// calibrated against (local Xeon == 1.0).
  double core_speed = 1.0;
  /// Physical capacity that exists in the fabric but has not joined the
  /// platform yet: offline nodes are built (NIC, endpoint) but skipped by
  /// PlatformDirectory::bootstrap, so a run only sees them after an explicit
  /// mid-run register_node. Requires a directory (validate_run enforces it).
  bool offline = false;
};

struct ClusterSpec {
  std::string name;
  std::vector<NodeSpec> nodes;
  double nic_bandwidth = 0.0;        ///< bytes/sec per node
  des::SimDuration nic_latency = 0;  ///< per-NIC latency contribution

  /// Convenience: `count` identical nodes.
  static ClusterSpec uniform(std::string name, std::size_t count, NodeSpec node,
                             double nic_bandwidth, des::SimDuration nic_latency);

  unsigned total_cores() const;
};

/// A site's storage service.
struct StoreSpec {
  enum class Kind { Disk, Object };
  Kind kind = Kind::Disk;

  double front_bandwidth = 0.0;       ///< aggregate capacity (disk array / store front end)
  double per_stream_bandwidth = 0.0;  ///< cap per reader stream / GET connection (0 = none)
  des::SimDuration access_latency = 0;  ///< disk seek / object request latency

  /// Object stores only: when > 0 the store sits on its own network site
  /// attached to the owning cluster through this provider-internal fabric;
  /// every other site reaches it over the owner's WAN link instead.
  double fabric_bandwidth = 0.0;
  des::SimDuration fabric_latency = 0;

  /// Object stores only: transient-fault model (per-GET failure probability,
  /// throttling windows, hung GETs). Default-disabled — the store behaves as
  /// the perfect-world device and draws no random numbers.
  storage::FaultProfile fault;

  static StoreSpec disk(double front_bandwidth, double per_stream_bandwidth,
                        des::SimDuration seek_latency);
  static StoreSpec object(double front_bandwidth, double per_connection_bandwidth,
                          des::SimDuration request_latency, double fabric_bandwidth = 0.0,
                          des::SimDuration fabric_latency = 0);
};

/// One site of the platform: a compute cluster plus an optional co-located
/// store. A site may be compute-only (burst capacity reading remote data —
/// its `affinity` can point at another site's store) or storage-only
/// (cluster with zero nodes).
struct SiteSpec {
  std::string name;
  ClusterSpec cluster;
  std::optional<StoreSpec> store;

  /// Billed cloud capacity: its instances and egress enter the cost model.
  bool cloud_billed = false;

  /// Site whose store this cluster treats as "local" for scheduling
  /// (locality preference, Table-I job accounting). kInvalidCluster = this
  /// site's own store when present, otherwise no local store (every job the
  /// cluster runs counts as stolen).
  ClusterId affinity = kInvalidCluster;
};

/// WAN parameters of one site pair, overriding the platform default.
struct WanEdge {
  ClusterId a = 0;
  ClusterId b = 0;
  double bandwidth = 0.0;
  des::SimDuration latency = 0;
};

struct PlatformSpec {
  std::vector<SiteSpec> sites;

  /// Default wide-area path: every site pair gets its own physical WAN link
  /// with these parameters unless `wan_overrides` names the pair.
  double wan_bandwidth = 0.0;
  des::SimDuration wan_latency = 0;
  std::vector<WanEdge> wan_overrides;

  /// Relative stddev of per-node speed jitter (the paper's "slight
  /// variations in processing throughput among the slave nodes"); applied
  /// deterministically from `jitter_seed`.
  double node_speed_jitter = 0.0;
  std::uint64_t jitter_seed = 0x5eed;

  // --- thin two-sided aliases ----------------------------------------------
  SiteSpec& site(ClusterId id) { return sites.at(id); }
  const SiteSpec& site(ClusterId id) const { return sites.at(id); }
  ClusterSpec& local() { return sites.at(kLocalSite).cluster; }
  const ClusterSpec& local() const { return sites.at(kLocalSite).cluster; }
  ClusterSpec& cloud() { return sites.at(kCloudSite).cluster; }
  const ClusterSpec& cloud() const { return sites.at(kCloudSite).cluster; }
  /// Site `id`'s own store spec; throws if the site has none.
  StoreSpec& store(ClusterId id) { return sites.at(id).store.value(); }
  const StoreSpec& store(ClusterId id) const { return sites.at(id).store.value(); }

  /// Set the WAN parameters of one specific site pair.
  void set_wan(ClusterId a, ClusterId b, double bandwidth, des::SimDuration latency);

  /// Deployment used throughout the paper's evaluation (OSU cluster + EC2
  /// m1.large + S3), with `local_cores` / `cloud_cores` compute power.
  /// Local nodes have 8 cores; cloud instances have 2 (m1.large).
  static PlatformSpec paper_testbed(unsigned local_cores, unsigned cloud_cores);

  /// The testbed's individual sites, for composing custom topologies (e.g. a
  /// third provider in a 3-site burst).
  static SiteSpec paper_local_site(unsigned cores);
  static SiteSpec paper_cloud_site(unsigned cores, std::string name = "cloud");
};

/// A compute node's runtime identity within a built platform.
struct NodeHandle {
  ClusterId cluster = 0;
  std::uint32_t index_in_cluster = 0;
  unsigned cores = 1;
  double core_speed = 1.0;
  net::EndpointId endpoint = 0;
  std::string name;
  bool offline = false;  ///< built into the fabric but absent at bootstrap
};

/// Builds and owns the simulated deployment: simulator, network, stores.
class Platform {
 public:
  explicit Platform(const PlatformSpec& spec);

  des::Simulator& sim() { return sim_; }
  net::Network& network() { return *network_; }
  const PlatformSpec& spec() const { return spec_; }

  std::size_t cluster_count() const { return nodes_.size(); }
  const std::vector<NodeHandle>& nodes(ClusterId cluster) const {
    return nodes_.at(cluster);
  }
  std::size_t total_nodes() const;
  /// Nodes on cloud-billed sites (rented instances).
  std::size_t cloud_node_count() const;
  bool is_cloud(ClusterId cluster) const { return spec_.sites.at(cluster).cloud_billed; }
  const std::string& site_name(ClusterId cluster) const {
    return spec_.sites.at(cluster).name;
  }

  std::size_t store_count() const { return stores_.size(); }
  storage::StoreService& store(storage::StoreId id);
  /// The store cluster `id` treats as local (its affinity); kInvalidStore if
  /// the cluster has no local store.
  storage::StoreId store_of_cluster(ClusterId id) const { return cluster_store_.at(id); }
  /// Site owning a store.
  ClusterId owner_of_store(storage::StoreId id) const { return store_owner_.at(id); }

  // Thin two-sided aliases (the paper testbed's store indices).
  storage::StoreId local_store_id() const { return store_of_cluster(kLocalSite); }
  storage::StoreId cloud_store_id() const { return store_of_cluster(kCloudSite); }

  /// Control-plane endpoints. The head runs at site 0 (it owns the data
  /// index, per the paper's Figure 2); each cluster has a master.
  net::EndpointId head_endpoint() const { return head_ep_; }
  net::EndpointId master_endpoint(ClusterId cluster) const {
    return master_ep_.at(cluster);
  }

  /// The physical WAN link between two distinct sites (fault injection:
  /// chaos windows scale its capacity). Throws if a == b.
  net::LinkId wan_link(ClusterId a, ClusterId b) const;

 private:
  void build_cluster(ClusterId id, const ClusterSpec& cspec, net::SiteId site);

  PlatformSpec spec_;
  des::Simulator sim_;
  std::unique_ptr<net::Network> network_;
  std::vector<std::vector<NodeHandle>> nodes_;
  net::EndpointId head_ep_ = 0;
  std::vector<net::EndpointId> master_ep_;
  std::vector<std::unique_ptr<storage::StoreService>> stores_;
  std::vector<storage::StoreId> cluster_store_;  ///< affinity store per site
  std::vector<ClusterId> store_owner_;           ///< owning site per store
  std::vector<std::vector<net::LinkId>> wan_;    ///< WAN link per site pair
};

}  // namespace cloudburst::cluster
