// Platform: the simulated deployment the middleware runs on.
//
// A platform is two compute clusters (the organization's local cluster and
// the cloud), two storage services (the local storage node and the S3-style
// object store), and the network connecting them:
//
//     [local nodes]--NIC--(local fabric)--+--WAN--+--(aws fabric)--NIC--[cloud nodes]
//     [storage node disk]-----------------+       +------------------[S3 front end]
//
// Intra-cluster paths cross only the two NICs involved; cross-cluster paths
// and local-cluster S3 reads cross the shared WAN; cloud S3 reads cross the
// AWS-internal fabric. All constants live in PlatformSpec so benches can
// sweep them (WAN bandwidth ablation, etc.).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "des/simulator.hpp"
#include "net/network.hpp"
#include "storage/local_store.hpp"
#include "storage/object_store.hpp"

namespace cloudburst::cluster {

/// Index of a compute cluster within the platform.
enum class ClusterSide : std::uint32_t { Local = 0, Cloud = 1 };
constexpr std::size_t kClusterCount = 2;

inline const char* to_string(ClusterSide side) {
  return side == ClusterSide::Local ? "local" : "cloud";
}

struct NodeSpec {
  unsigned cores = 1;
  /// Per-core throughput relative to the reference core the AppProfiles are
  /// calibrated against (local Xeon == 1.0).
  double core_speed = 1.0;
};

struct ClusterSpec {
  std::string name;
  std::vector<NodeSpec> nodes;
  double nic_bandwidth = 0.0;        ///< bytes/sec per node
  des::SimDuration nic_latency = 0;  ///< per-NIC latency contribution

  /// Convenience: `count` identical nodes.
  static ClusterSpec uniform(std::string name, std::size_t count, NodeSpec node,
                             double nic_bandwidth, des::SimDuration nic_latency);

  unsigned total_cores() const;
};

struct PlatformSpec {
  ClusterSpec local;
  ClusterSpec cloud;

  // Wide-area path between the organization and the cloud provider.
  double wan_bandwidth = 0.0;
  des::SimDuration wan_latency = 0;

  // Local storage node (disk channel feeding the cluster fabric).
  double disk_bandwidth = 0.0;
  double disk_per_stream_bandwidth = 0.0;  ///< cap per concurrent reader (0 = none)
  des::SimDuration disk_seek_latency = 0;

  /// Two-cloud-provider deployments (paper §II: "our solution will also be
  /// applicable if the data and/or processing power is spread across two
  /// different cloud providers"): when set, the "local" side's store is an
  /// object store too (capacity = disk_bandwidth, request latency and
  /// per-connection cap shared with the S3 parameters) instead of a
  /// disk-backed storage node.
  bool local_store_is_object = false;

  // S3-style object store.
  double s3_front_bandwidth = 0.0;        ///< aggregate capacity of the store
  des::SimDuration s3_request_latency = 0;
  double s3_per_connection_bandwidth = 0; ///< cap per retrieval stream
  double aws_fabric_bandwidth = 0.0;      ///< cloud-internal path to S3
  des::SimDuration aws_fabric_latency = 0;

  /// Relative stddev of per-node speed jitter (the paper's "slight
  /// variations in processing throughput among the slave nodes"); applied
  /// deterministically from `jitter_seed`.
  double node_speed_jitter = 0.0;
  std::uint64_t jitter_seed = 0x5eed;

  /// Deployment used throughout the paper's evaluation (OSU cluster + EC2
  /// m1.large + S3), with `local_cores` / `cloud_cores` compute power.
  /// Local nodes have 8 cores; cloud instances have 2 (m1.large).
  static PlatformSpec paper_testbed(unsigned local_cores, unsigned cloud_cores);
};

/// A compute node's runtime identity within a built platform.
struct NodeHandle {
  ClusterSide cluster;
  std::uint32_t index_in_cluster = 0;
  unsigned cores = 1;
  double core_speed = 1.0;
  net::EndpointId endpoint = 0;
  std::string name;
};

/// Builds and owns the simulated deployment: simulator, network, stores.
class Platform {
 public:
  explicit Platform(const PlatformSpec& spec);

  des::Simulator& sim() { return sim_; }
  net::Network& network() { return *network_; }
  const PlatformSpec& spec() const { return spec_; }

  const std::vector<NodeHandle>& nodes(ClusterSide side) const {
    return nodes_[static_cast<std::size_t>(side)];
  }
  std::size_t total_nodes() const;

  storage::StoreService& store(storage::StoreId id);
  storage::StoreId local_store_id() const { return 0; }
  storage::StoreId cloud_store_id() const { return 1; }

  /// Control-plane endpoints. The head runs at the local site (it owns the
  /// data index, per the paper's Figure 2); each cluster has a master.
  net::EndpointId head_endpoint() const { return head_ep_; }
  net::EndpointId master_endpoint(ClusterSide side) const {
    return master_ep_[static_cast<std::size_t>(side)];
  }

 private:
  void build_cluster(ClusterSide side, const ClusterSpec& cspec, net::SiteId site);

  PlatformSpec spec_;
  des::Simulator sim_;
  std::unique_ptr<net::Network> network_;
  std::vector<NodeHandle> nodes_[kClusterCount];
  net::EndpointId head_ep_ = 0;
  net::EndpointId master_ep_[kClusterCount] = {0, 0};
  std::unique_ptr<storage::StoreService> local_store_;
  std::unique_ptr<storage::StoreService> object_store_;
};

}  // namespace cloudburst::cluster
