#include "cluster/platform.hpp"

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace cloudburst::cluster {

ClusterSpec ClusterSpec::uniform(std::string name, std::size_t count, NodeSpec node,
                                 double nic_bandwidth, des::SimDuration nic_latency) {
  ClusterSpec spec;
  spec.name = std::move(name);
  spec.nodes.assign(count, node);
  spec.nic_bandwidth = nic_bandwidth;
  spec.nic_latency = nic_latency;
  return spec;
}

unsigned ClusterSpec::total_cores() const {
  unsigned total = 0;
  for (const auto& n : nodes) total += n.cores;
  return total;
}

PlatformSpec PlatformSpec::paper_testbed(unsigned local_cores, unsigned cloud_cores) {
  using namespace cloudburst::units;
  PlatformSpec spec;

  // Local cluster: Intel Xeon 8-core nodes on Infiniband (reference speed 1.0).
  const unsigned local_nodes = (local_cores + 7) / 8;
  spec.local = ClusterSpec::uniform("local", local_nodes, NodeSpec{8, 1.0},
                                    /*nic=*/GiBps(1.25), /*lat=*/des::from_seconds(us(20)));
  if (local_nodes > 0) {
    // Trim the last node if the core count is not a multiple of 8.
    unsigned used = 8 * (local_nodes - 1);
    spec.local.nodes.back().cores = local_cores - used;
  }

  // Cloud: EC2 m1.large — 2 virtual cores, ~0.73x the local Xeon per core
  // (this is the ratio the paper balanced empirically: 22 cloud cores for
  // 16 local cores in kmeans), gigabit-class "high I/O" networking.
  const unsigned cloud_nodes = (cloud_cores + 1) / 2;
  spec.cloud = ClusterSpec::uniform("cloud", cloud_nodes, NodeSpec{2, 0.73},
                                    /*nic=*/MBps(160), /*lat=*/des::from_seconds(us(200)));
  if (cloud_nodes > 0) {
    unsigned used = 2 * (cloud_nodes - 1);
    spec.cloud.nodes.back().cores = cloud_cores - used;
  }

  // Organization <-> AWS wide-area path.
  spec.wan_bandwidth = MBps(125);
  spec.wan_latency = des::from_seconds(ms(25));

  // Dedicated storage node: SATA array feeding the cluster. A single reader
  // stream cannot saturate the array (per-stream cap), so the per-node
  // retrieval rate is flat until many readers contend.
  spec.disk_bandwidth = MBps(1600);
  spec.disk_per_stream_bandwidth = MBps(400);
  spec.disk_seek_latency = des::from_seconds(ms(8));

  // S3.
  spec.s3_front_bandwidth = GiBps(2.5);
  spec.s3_request_latency = des::from_seconds(ms(60));
  spec.s3_per_connection_bandwidth = MBps(25);
  spec.aws_fabric_bandwidth = GiBps(2.0);
  spec.aws_fabric_latency = des::from_seconds(ms(2));

  // "Slight variations in processing throughput among the slave nodes."
  spec.node_speed_jitter = 0.03;
  return spec;
}

Platform::Platform(const PlatformSpec& spec) : spec_(spec) {
  network_ = std::make_unique<net::Network>(sim_);
  net::Network& net = *network_;

  const net::SiteId local_site = net.add_site("local");
  const net::SiteId cloud_site = net.add_site("cloud");
  const net::SiteId s3_site = net.add_site("s3");

  // Inter-site fabric.
  const net::LinkId wan =
      net.add_link("wan", spec_.wan_bandwidth, spec_.wan_latency);
  const net::LinkId aws_fabric =
      net.add_link("aws-fabric", spec_.aws_fabric_bandwidth, spec_.aws_fabric_latency);
  net.set_route_symmetric(local_site, cloud_site, {wan});
  net.set_route_symmetric(local_site, s3_site, {wan});
  net.set_route_symmetric(cloud_site, s3_site, {aws_fabric});

  build_cluster(ClusterSide::Local, spec_.local, local_site);
  build_cluster(ClusterSide::Cloud, spec_.cloud, cloud_site);

  // Control-plane endpoints: head at the local site, one master per cluster.
  auto control_ep = [&](const std::string& name, net::SiteId site, double bw,
                        des::SimDuration lat) {
    const net::LinkId nic = net.add_link(name + "-nic", bw, lat);
    const net::EndpointId ep = net.add_endpoint(name, site);
    net.set_access_path(ep, {nic});
    return ep;
  };
  head_ep_ = control_ep("head", local_site, spec_.local.nic_bandwidth, spec_.local.nic_latency);
  master_ep_[0] =
      control_ep("master-local", local_site, spec_.local.nic_bandwidth, spec_.local.nic_latency);
  master_ep_[1] =
      control_ep("master-cloud", cloud_site, spec_.cloud.nic_bandwidth, spec_.cloud.nic_latency);

  // Storage services.
  const net::LinkId disk = net.add_link("storage-disk", spec_.disk_bandwidth, 0);
  const net::EndpointId store_ep = net.add_endpoint("storage-node", local_site);
  net.set_access_path(store_ep, {disk});
  if (spec_.local_store_is_object) {
    // Two-provider deployment: provider A's object store.
    local_store_ = std::make_unique<storage::ObjectStore>(
        local_store_id(), sim_, net, store_ep,
        storage::ObjectStore::Params{spec_.s3_request_latency,
                                     spec_.s3_per_connection_bandwidth});
  } else {
    local_store_ = std::make_unique<storage::LocalStore>(
        local_store_id(), sim_, net, store_ep,
        storage::LocalStore::Params{spec_.disk_seek_latency, 0,
                                    spec_.disk_per_stream_bandwidth});
  }

  const net::LinkId s3_front = net.add_link("s3-front", spec_.s3_front_bandwidth, 0);
  const net::EndpointId s3_ep = net.add_endpoint("s3", s3_site);
  net.set_access_path(s3_ep, {s3_front});
  object_store_ = std::make_unique<storage::ObjectStore>(
      cloud_store_id(), sim_, net, s3_ep,
      storage::ObjectStore::Params{spec_.s3_request_latency,
                                   spec_.s3_per_connection_bandwidth});
}

void Platform::build_cluster(ClusterSide side, const ClusterSpec& cspec, net::SiteId site) {
  net::Network& net = *network_;
  auto& list = nodes_[static_cast<std::size_t>(side)];
  list.reserve(cspec.nodes.size());
  // One deterministic jitter stream per cluster keeps node speeds stable
  // under changes elsewhere in the topology.
  Rng jitter = Rng::substream(spec_.jitter_seed, static_cast<std::uint64_t>(side));
  for (std::size_t i = 0; i < cspec.nodes.size(); ++i) {
    NodeHandle handle;
    handle.cluster = side;
    handle.index_in_cluster = static_cast<std::uint32_t>(i);
    handle.cores = cspec.nodes[i].cores;
    handle.core_speed = cspec.nodes[i].core_speed;
    if (spec_.node_speed_jitter > 0.0) {
      const double factor = 1.0 + spec_.node_speed_jitter * jitter.normal();
      handle.core_speed *= std::max(0.5, factor);
    }
    handle.name = cspec.name + "-node" + std::to_string(i);
    const net::LinkId nic =
        net.add_link(handle.name + "-nic", cspec.nic_bandwidth, cspec.nic_latency);
    handle.endpoint = net.add_endpoint(handle.name, site);
    net.set_access_path(handle.endpoint, {nic});
    list.push_back(std::move(handle));
  }
}

std::size_t Platform::total_nodes() const {
  return nodes_[0].size() + nodes_[1].size();
}

storage::StoreService& Platform::store(storage::StoreId id) {
  if (id == local_store_id()) return *local_store_;
  if (id == cloud_store_id()) return *object_store_;
  throw std::out_of_range("unknown store id");
}

}  // namespace cloudburst::cluster
