#include "cluster/platform.hpp"

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace cloudburst::cluster {

ClusterSpec ClusterSpec::uniform(std::string name, std::size_t count, NodeSpec node,
                                 double nic_bandwidth, des::SimDuration nic_latency) {
  ClusterSpec spec;
  spec.name = std::move(name);
  spec.nodes.assign(count, node);
  spec.nic_bandwidth = nic_bandwidth;
  spec.nic_latency = nic_latency;
  return spec;
}

unsigned ClusterSpec::total_cores() const {
  unsigned total = 0;
  for (const auto& n : nodes) total += n.cores;
  return total;
}

StoreSpec StoreSpec::disk(double front_bandwidth, double per_stream_bandwidth,
                          des::SimDuration seek_latency) {
  StoreSpec s;
  s.kind = Kind::Disk;
  s.front_bandwidth = front_bandwidth;
  s.per_stream_bandwidth = per_stream_bandwidth;
  s.access_latency = seek_latency;
  return s;
}

StoreSpec StoreSpec::object(double front_bandwidth, double per_connection_bandwidth,
                            des::SimDuration request_latency, double fabric_bandwidth,
                            des::SimDuration fabric_latency) {
  StoreSpec s;
  s.kind = Kind::Object;
  s.front_bandwidth = front_bandwidth;
  s.per_stream_bandwidth = per_connection_bandwidth;
  s.access_latency = request_latency;
  s.fabric_bandwidth = fabric_bandwidth;
  s.fabric_latency = fabric_latency;
  return s;
}

void PlatformSpec::set_wan(ClusterId a, ClusterId b, double bandwidth,
                           des::SimDuration latency) {
  if (a == b) throw std::invalid_argument("set_wan: a site has no WAN to itself");
  for (auto& e : wan_overrides) {
    if ((e.a == a && e.b == b) || (e.a == b && e.b == a)) {
      e.bandwidth = bandwidth;
      e.latency = latency;
      return;
    }
  }
  wan_overrides.push_back(WanEdge{a, b, bandwidth, latency});
}

SiteSpec PlatformSpec::paper_local_site(unsigned cores) {
  using namespace cloudburst::units;
  SiteSpec site;
  site.name = "local";
  // Local cluster: Intel Xeon 8-core nodes on Infiniband (reference speed 1.0).
  const unsigned nodes = (cores + 7) / 8;
  site.cluster = ClusterSpec::uniform("local", nodes, NodeSpec{8, 1.0},
                                      /*nic=*/GiBps(1.25), /*lat=*/des::from_seconds(us(20)));
  if (nodes > 0) {
    // Trim the last node if the core count is not a multiple of 8.
    unsigned used = 8 * (nodes - 1);
    site.cluster.nodes.back().cores = cores - used;
  }
  // Dedicated storage node: SATA array feeding the cluster. A single reader
  // stream cannot saturate the array (per-stream cap), so the per-node
  // retrieval rate is flat until many readers contend.
  site.store = StoreSpec::disk(MBps(1600), MBps(400), des::from_seconds(ms(8)));
  return site;
}

SiteSpec PlatformSpec::paper_cloud_site(unsigned cores, std::string name) {
  using namespace cloudburst::units;
  SiteSpec site;
  site.name = name;
  site.cloud_billed = true;
  // Cloud: EC2 m1.large — 2 virtual cores, ~0.73x the local Xeon per core
  // (this is the ratio the paper balanced empirically: 22 cloud cores for
  // 16 local cores in kmeans), gigabit-class "high I/O" networking.
  const unsigned nodes = (cores + 1) / 2;
  site.cluster = ClusterSpec::uniform(std::move(name), nodes, NodeSpec{2, 0.73},
                                      /*nic=*/MBps(160), /*lat=*/des::from_seconds(us(200)));
  if (nodes > 0) {
    unsigned used = 2 * (nodes - 1);
    site.cluster.nodes.back().cores = cores - used;
  }
  // S3-style store behind the provider-internal fabric.
  site.store = StoreSpec::object(GiBps(2.5), MBps(25), des::from_seconds(ms(60)),
                                 /*fabric=*/GiBps(2.0), des::from_seconds(ms(2)));
  return site;
}

PlatformSpec PlatformSpec::paper_testbed(unsigned local_cores, unsigned cloud_cores) {
  using namespace cloudburst::units;
  PlatformSpec spec;
  spec.sites.push_back(paper_local_site(local_cores));
  spec.sites.push_back(paper_cloud_site(cloud_cores));

  // Organization <-> AWS wide-area path.
  spec.wan_bandwidth = MBps(125);
  spec.wan_latency = des::from_seconds(ms(25));

  // "Slight variations in processing throughput among the slave nodes."
  spec.node_speed_jitter = 0.03;
  return spec;
}

Platform::Platform(const PlatformSpec& spec) : spec_(spec) {
  if (spec_.sites.empty()) {
    throw std::invalid_argument("Platform: spec has no sites");
  }
  const auto n_sites = static_cast<ClusterId>(spec_.sites.size());

  network_ = std::make_unique<net::Network>(sim_);
  net::Network& net = *network_;

  // Network sites: one per cluster, then one per fabric-attached store.
  std::vector<net::SiteId> cluster_site(n_sites);
  std::vector<net::SiteId> store_site(n_sites);  // == cluster_site[i] unless fabric
  for (ClusterId i = 0; i < n_sites; ++i) {
    cluster_site[i] = net.add_site(spec_.sites[i].name);
  }
  for (ClusterId i = 0; i < n_sites; ++i) {
    const auto& store = spec_.sites[i].store;
    store_site[i] = (store && store->fabric_bandwidth > 0.0)
                        ? net.add_site(spec_.sites[i].name + "-store")
                        : cluster_site[i];
  }

  // One physical WAN link per site pair (default parameters unless
  // overridden), then the provider-internal store fabrics.
  auto wan_edge = [&](ClusterId a, ClusterId b) {
    for (const auto& e : spec_.wan_overrides) {
      if ((e.a == a && e.b == b) || (e.a == b && e.b == a)) {
        return std::make_pair(e.bandwidth, e.latency);
      }
    }
    return std::make_pair(spec_.wan_bandwidth, spec_.wan_latency);
  };
  wan_.assign(n_sites, std::vector<net::LinkId>(n_sites));
  auto& wan = wan_;
  for (ClusterId a = 0; a < n_sites; ++a) {
    for (ClusterId b = a + 1; b < n_sites; ++b) {
      const auto [bw, lat] = wan_edge(a, b);
      const std::string name =
          n_sites == 2 ? "wan" : "wan-" + spec_.sites[a].name + "-" + spec_.sites[b].name;
      wan[a][b] = wan[b][a] = net.add_link(name, bw, lat);
    }
  }
  std::vector<net::LinkId> fabric(n_sites);
  for (ClusterId i = 0; i < n_sites; ++i) {
    const auto& store = spec_.sites[i].store;
    if (store && store->fabric_bandwidth > 0.0) {
      fabric[i] = net.add_link(spec_.sites[i].name + "-fabric", store->fabric_bandwidth,
                               store->fabric_latency);
    }
  }

  // Routes. Cluster <-> cluster crosses the pair's WAN link. A fabric store
  // is reached through the fabric from its own cluster and through the
  // owner's WAN link from every other site (the store front end is on the
  // public internet; the fabric is the provider-internal shortcut).
  for (ClusterId a = 0; a < n_sites; ++a) {
    for (ClusterId b = a + 1; b < n_sites; ++b) {
      net.set_route_symmetric(cluster_site[a], cluster_site[b], {wan[a][b]});
    }
  }
  for (ClusterId i = 0; i < n_sites; ++i) {
    if (store_site[i] == cluster_site[i]) continue;
    net.set_route_symmetric(cluster_site[i], store_site[i], {fabric[i]});
    for (ClusterId other = 0; other < n_sites; ++other) {
      if (other == i) continue;
      net.set_route_symmetric(cluster_site[other], store_site[i], {wan[other][i]});
    }
  }

  // Compute nodes.
  nodes_.resize(n_sites);
  for (ClusterId i = 0; i < n_sites; ++i) {
    build_cluster(i, spec_.sites[i].cluster, cluster_site[i]);
  }

  // Control-plane endpoints: head at site 0, one master per cluster.
  auto control_ep = [&](const std::string& name, net::SiteId site, double bw,
                        des::SimDuration lat) {
    const net::LinkId nic = net.add_link(name + "-nic", bw, lat);
    const net::EndpointId ep = net.add_endpoint(name, site);
    net.set_access_path(ep, {nic});
    return ep;
  };
  head_ep_ = control_ep("head", cluster_site[0], spec_.sites[0].cluster.nic_bandwidth,
                        spec_.sites[0].cluster.nic_latency);
  master_ep_.resize(n_sites);
  for (ClusterId i = 0; i < n_sites; ++i) {
    const ClusterSpec& cspec = spec_.sites[i].cluster;
    master_ep_[i] = control_ep("master-" + spec_.sites[i].name, cluster_site[i],
                               cspec.nic_bandwidth, cspec.nic_latency);
  }

  // Storage services, in site order; StoreId == construction order.
  cluster_store_.assign(n_sites, storage::kInvalidStore);
  for (ClusterId i = 0; i < n_sites; ++i) {
    const auto& store = spec_.sites[i].store;
    if (!store) continue;
    const storage::StoreId id = static_cast<storage::StoreId>(stores_.size());
    const bool is_object = store->kind == StoreSpec::Kind::Object;
    const net::LinkId front = net.add_link(
        spec_.sites[i].name + (is_object ? "-store-front" : "-disk"),
        store->front_bandwidth, 0);
    const net::EndpointId ep =
        net.add_endpoint(spec_.sites[i].name + "-store", store_site[i]);
    net.set_access_path(ep, {front});
    if (is_object) {
      stores_.push_back(std::make_unique<storage::ObjectStore>(
          id, sim_, net, ep,
          storage::ObjectStore::Params{store->access_latency,
                                       store->per_stream_bandwidth, store->fault}));
    } else {
      stores_.push_back(std::make_unique<storage::LocalStore>(
          id, sim_, net, ep,
          storage::LocalStore::Params{store->access_latency, 0,
                                      store->per_stream_bandwidth}));
    }
    store_owner_.push_back(i);
    cluster_store_[i] = id;
  }

  // Store affinity: a site without its own store may point at another
  // site's (compute-only burst capacity reading a remote store).
  for (ClusterId i = 0; i < n_sites; ++i) {
    const ClusterId aff = spec_.sites[i].affinity;
    if (aff == kInvalidCluster) continue;
    if (aff >= n_sites) {
      throw std::invalid_argument("Platform: site affinity names an unknown site");
    }
    cluster_store_[i] = cluster_store_[aff];
  }
}

void Platform::build_cluster(ClusterId id, const ClusterSpec& cspec, net::SiteId site) {
  net::Network& net = *network_;
  auto& list = nodes_[id];
  list.reserve(cspec.nodes.size());
  // One deterministic jitter stream per cluster keeps node speeds stable
  // under changes elsewhere in the topology.
  Rng jitter = Rng::substream(spec_.jitter_seed, id);
  for (std::size_t i = 0; i < cspec.nodes.size(); ++i) {
    NodeHandle handle;
    handle.cluster = id;
    handle.index_in_cluster = static_cast<std::uint32_t>(i);
    handle.cores = cspec.nodes[i].cores;
    handle.core_speed = cspec.nodes[i].core_speed;
    if (spec_.node_speed_jitter > 0.0) {
      const double factor = 1.0 + spec_.node_speed_jitter * jitter.normal();
      handle.core_speed *= std::max(0.5, factor);
    }
    handle.offline = cspec.nodes[i].offline;
    handle.name = cspec.name + "-node" + std::to_string(i);
    const net::LinkId nic =
        net.add_link(handle.name + "-nic", cspec.nic_bandwidth, cspec.nic_latency);
    handle.endpoint = net.add_endpoint(handle.name, site);
    net.set_access_path(handle.endpoint, {nic});
    list.push_back(std::move(handle));
  }
}

std::size_t Platform::total_nodes() const {
  std::size_t total = 0;
  for (const auto& cluster : nodes_) total += cluster.size();
  return total;
}

std::size_t Platform::cloud_node_count() const {
  std::size_t total = 0;
  for (ClusterId i = 0; i < nodes_.size(); ++i) {
    if (is_cloud(i)) total += nodes_[i].size();
  }
  return total;
}

storage::StoreService& Platform::store(storage::StoreId id) {
  if (id >= stores_.size()) throw std::out_of_range("unknown store id");
  return *stores_[id];
}

net::LinkId Platform::wan_link(ClusterId a, ClusterId b) const {
  if (a == b) throw std::invalid_argument("wan_link: a site has no WAN to itself");
  return wan_.at(a).at(b);
}

}  // namespace cloudburst::cluster
