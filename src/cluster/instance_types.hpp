// Cloud instance catalog (2011-era EC2).
//
// The paper used m1.large; its follow-up work provisions across instance
// types to trade time against cost. Speeds are relative to the local Xeon
// reference core and follow the ECU ratings (1 ECU ~ a 1.0-1.2 GHz 2007
// Opteron; the paper's calibration pegs an m1.large core at ~0.73 of the
// local Xeon, i.e. ~0.365 per ECU).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/platform.hpp"

namespace cloudburst::cluster {

struct InstanceType {
  std::string name;
  unsigned cores = 1;
  double core_speed = 1.0;      ///< per-core throughput vs the local reference
  double nic_bandwidth = 0.0;   ///< bytes/sec
  double hourly_usd = 0.0;      ///< on-demand price (us-east, 2011)
};

/// The 2011 on-demand catalog used by the typed planner.
const std::vector<InstanceType>& ec2_catalog_2011();

/// Look up a type by name; throws if unknown.
const InstanceType& instance_type(const std::string& name);

/// The paper testbed with the cloud side built from `count` instances of
/// `type` instead of m1.large.
PlatformSpec paper_testbed_typed(unsigned local_cores, const InstanceType& type,
                                 unsigned count);

}  // namespace cloudburst::cluster
