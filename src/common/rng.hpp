// Deterministic random number generation.
//
// All randomness in cloudburst flows through these generators so that
// simulations, data generators, and property tests are exactly reproducible
// from a seed. We provide:
//   * SplitMix64 — seed expansion / cheap stateless hashing,
//   * Xoshiro256StarStar — the workhorse generator (satisfies
//     std::uniform_random_bit_generator, so it plugs into <random>),
//   * Rng — a convenience façade with the distributions we actually use.
#pragma once

#include <cstdint>
#include <limits>

namespace cloudburst {

/// SplitMix64: tiny, fast, passes BigCrush; used to expand one 64-bit seed
/// into the larger state of Xoshiro and to derive independent substreams.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** by Blackman & Vigna. State is seeded via SplitMix64 so any
/// 64-bit seed (including 0) yields a well-mixed state.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256StarStar(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4] = {};
};

/// Convenience façade over Xoshiro with the handful of distributions the
/// project needs. Deliberately *not* <random> distributions: their outputs
/// are not portable across standard library implementations, and we want
/// bit-identical runs everywhere.
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) : gen_(seed) {}

  /// Derive an independent substream; `stream_id` namespaces consumers
  /// (e.g. one stream per simulated node) without correlated sequences.
  static constexpr Rng substream(std::uint64_t seed, std::uint64_t stream_id) {
    SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1)));
    return Rng(sm.next());
  }

  constexpr std::uint64_t next_u64() { return gen_(); }

  /// Uniform in [0, bound). bound == 0 returns 0. Uses Lemire's method.
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    // 128-bit multiply keeps the rejection zone tiny; loop until unbiased.
    while (true) {
      const std::uint64_t x = gen_();
      const unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
      const std::uint64_t lo = static_cast<std::uint64_t>(m);
      if (lo >= bound || lo >= (std::uint64_t(0) - bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Standard normal via Marsaglia polar method (portable, no <cmath> state).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential with the given rate (events per unit time).
  double exponential(double rate);

  /// Bernoulli trial with probability p of true.
  constexpr bool bernoulli(double p) { return next_double() < p; }

  /// Zipf-distributed integer in [0, n) with exponent `s` (rejection-inversion).
  std::uint64_t zipf(std::uint64_t n, double s);

 private:
  Xoshiro256StarStar gen_;
};

}  // namespace cloudburst
