#include "common/logging.hpp"

#include <atomic>

namespace cloudburst::log {

namespace {

std::atomic<int> g_level{static_cast<int>(Level::Warn)};
std::mutex g_sink_mutex;

const char* level_name(Level lvl) {
  switch (lvl) {
    case Level::Trace: return "TRACE";
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO ";
    case Level::Warn: return "WARN ";
    case Level::Error: return "ERROR";
    case Level::Off: return "OFF  ";
  }
  return "?????";
}

}  // namespace

void set_level(Level level) { g_level.store(static_cast<int>(level), std::memory_order_relaxed); }

Level level() { return static_cast<Level>(g_level.load(std::memory_order_relaxed)); }

bool enabled(Level lvl) { return static_cast<int>(lvl) >= g_level.load(std::memory_order_relaxed); }

void write(Level lvl, std::string_view component, std::string_view message) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(lvl),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace cloudburst::log
