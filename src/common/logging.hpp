// Minimal leveled logger.
//
// The simulator is single-threaded but the real engines are not, so the sink
// is mutex-guarded. Log level is a process-wide setting; benches default to
// Warn so their stdout stays a clean table.
#pragma once

#include <cstdio>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace cloudburst::log {

enum class Level : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Process-wide minimum level; messages below it are dropped.
void set_level(Level level);
Level level();

/// True when a message at `lvl` would actually be emitted.
bool enabled(Level lvl);

/// Emit a single already-formatted line (thread-safe).
void write(Level lvl, std::string_view component, std::string_view message);

namespace detail {

inline void append_all(std::ostringstream&) {}

template <typename T, typename... Rest>
void append_all(std::ostringstream& os, const T& value, const Rest&... rest) {
  os << value;
  append_all(os, rest...);
}

template <typename... Args>
void emit(Level lvl, std::string_view component, const Args&... args) {
  if (!enabled(lvl)) return;
  std::ostringstream os;
  append_all(os, args...);
  write(lvl, component, os.str());
}

}  // namespace detail

template <typename... Args>
void trace(std::string_view component, const Args&... args) {
  detail::emit(Level::Trace, component, args...);
}
template <typename... Args>
void debug(std::string_view component, const Args&... args) {
  detail::emit(Level::Debug, component, args...);
}
template <typename... Args>
void info(std::string_view component, const Args&... args) {
  detail::emit(Level::Info, component, args...);
}
template <typename... Args>
void warn(std::string_view component, const Args&... args) {
  detail::emit(Level::Warn, component, args...);
}
template <typename... Args>
void error(std::string_view component, const Args&... args) {
  detail::emit(Level::Error, component, args...);
}

}  // namespace cloudburst::log
