#include "common/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace cloudburst {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) throw std::invalid_argument("ThreadPool requires >= 1 thread");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] {
      while (auto task = queue_.pop()) {
        (*task)();
      }
    });
  }
}

ThreadPool::~ThreadPool() {
  queue_.close();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) { queue_.push(std::move(task)); }

void ThreadPool::parallel_for(std::size_t n, std::size_t grain,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  grain = std::max<std::size_t>(grain, 1);
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t workers = std::min(size(), (n + grain - 1) / grain);

  std::vector<std::future<void>> done;
  done.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    done.push_back(submit_task([next, n, grain, &body] {
      while (true) {
        const std::size_t begin = next->fetch_add(grain, std::memory_order_relaxed);
        if (begin >= n) break;
        const std::size_t end = std::min(begin + grain, n);
        for (std::size_t i = begin; i < end; ++i) body(i);
      }
    }));
  }
  for (auto& f : done) f.get();
}

void ThreadPool::run_on_all(std::size_t k, const std::function<void(std::size_t)>& body) {
  std::vector<std::future<void>> done;
  done.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    done.push_back(submit_task([i, &body] { body(i); }));
  }
  for (auto& f : done) f.get();
}

}  // namespace cloudburst
