// Little binary serialization layer.
//
// Reduction objects cross simulated cluster boundaries and real engine thread
// boundaries as flat byte buffers; BufferWriter/BufferReader give a typed,
// bounds-checked view over those buffers. Format: little-endian fixed-width
// integers, IEEE doubles, length-prefixed strings/vectors. Not meant as an
// interchange format — both ends are this library.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace cloudburst {

/// Appends plain-old-data values to a growable byte buffer.
class BufferWriter {
 public:
  BufferWriter() = default;
  explicit BufferWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void write_u8(std::uint8_t v) { append(&v, sizeof v); }
  void write_u32(std::uint32_t v) { append(&v, sizeof v); }
  void write_u64(std::uint64_t v) { append(&v, sizeof v); }
  void write_i64(std::int64_t v) { append(&v, sizeof v); }
  void write_f64(double v) { append(&v, sizeof v); }

  void write_string(const std::string& s) {
    write_u64(s.size());
    append(s.data(), s.size());
  }

  template <typename T>
  void write_pod_vector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>, "write_pod_vector needs POD");
    write_u64(v.size());
    append(v.data(), v.size() * sizeof(T));
  }

  void write_bytes(const void* data, std::size_t n) { append(data, n); }

  const std::vector<std::uint8_t>& buffer() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  void append(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }
  std::vector<std::uint8_t> buf_;
};

/// Reads values back out; throws std::out_of_range on truncated input so
/// corruption is loud rather than silent.
class BufferReader {
 public:
  BufferReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  explicit BufferReader(const std::vector<std::uint8_t>& buf)
      : BufferReader(buf.data(), buf.size()) {}

  std::uint8_t read_u8() { return read_pod<std::uint8_t>(); }
  std::uint32_t read_u32() { return read_pod<std::uint32_t>(); }
  std::uint64_t read_u64() { return read_pod<std::uint64_t>(); }
  std::int64_t read_i64() { return read_pod<std::int64_t>(); }
  double read_f64() { return read_pod<double>(); }

  std::string read_string() {
    const std::uint64_t n = read_u64();
    check(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  template <typename T>
  std::vector<T> read_pod_vector() {
    static_assert(std::is_trivially_copyable_v<T>, "read_pod_vector needs POD");
    const std::uint64_t n = read_u64();
    check(n * sizeof(T));
    std::vector<T> v(n);
    std::memcpy(v.data(), data_ + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return v;
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  template <typename T>
  T read_pod() {
    check(sizeof(T));
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  void check(std::uint64_t need) const {
    if (need > size_ - pos_) {
      throw std::out_of_range("BufferReader: truncated buffer");
    }
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace cloudburst
