#include "common/config.hpp"

#include <sstream>
#include <stdexcept>

namespace cloudburst {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

Config Config::from_args(const std::vector<std::string>& args) {
  Config cfg;
  for (const auto& arg : args) {
    const auto eq = arg.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("expected key=value, got: " + arg);
    }
    cfg.set(trim(arg.substr(0, eq)), trim(arg.substr(eq + 1)));
  }
  return cfg;
}

Config Config::from_args(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return from_args(args);
}

Config Config::from_string(const std::string& text) {
  Config cfg;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("config line is not key=value: " + line);
    }
    cfg.set(trim(line.substr(0, eq)), trim(line.substr(eq + 1)));
  }
  return cfg;
}

void Config::set(const std::string& key, const std::string& value) { values_[key] = value; }

bool Config::contains(const std::string& key) const { return values_.count(key) != 0; }

std::string Config::get_string(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Config::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::size_t pos = 0;
  const std::int64_t v = std::stoll(it->second, &pos);
  if (pos != it->second.size()) {
    throw std::invalid_argument("config key " + key + " is not an integer: " + it->second);
  }
  return v;
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::size_t pos = 0;
  const double v = std::stod(it->second, &pos);
  if (pos != it->second.size()) {
    throw std::invalid_argument("config key " + key + " is not a number: " + it->second);
  }
  return v;
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("config key " + key + " is not a bool: " + v);
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

}  // namespace cloudburst
