// ASCII table printer for bench output.
//
// Every bench binary regenerates one of the paper's tables/figures as text;
// this keeps the formatting consistent (fixed-width columns, right-aligned
// numerics, optional title and footnote rows).
#pragma once

#include <string>
#include <vector>

namespace cloudburst {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers);

  /// Add one data row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience for building cells from doubles ("%.2f" by default).
  static std::string num(double v, int precision = 2);
  static std::string pct(double fraction, int precision = 1);

  /// Insert a horizontal separator after the current last row.
  void add_separator();

  std::string render(const std::string& title = "") const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // empty vector == separator
};

}  // namespace cloudburst
