#include "common/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <stdexcept>

namespace cloudburst {

AsciiTable::AsciiTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("AsciiTable needs at least one column");
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("AsciiTable row arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

void AsciiTable::add_separator() { rows_.emplace_back(); }

std::string AsciiTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string AsciiTable::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string AsciiTable::render(const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto rule = [&] {
    std::string s = "+";
    for (auto w : widths) s += std::string(w + 2, '-') + "+";
    s += "\n";
    return s;
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      // Right-align cells that look numeric, left-align text.
      const bool numeric =
          !cells[c].empty() && (std::isdigit(static_cast<unsigned char>(cells[c][0])) ||
                                cells[c][0] == '-' || cells[c][0] == '+');
      const std::size_t pad = widths[c] - cells[c].size();
      if (numeric) {
        s += " " + std::string(pad, ' ') + cells[c] + " |";
      } else {
        s += " " + cells[c] + std::string(pad, ' ') + " |";
      }
    }
    s += "\n";
    return s;
  };

  std::string out;
  if (!title.empty()) out += title + "\n";
  out += rule();
  out += line(headers_);
  out += rule();
  for (const auto& row : rows_) {
    out += row.empty() ? rule() : line(row);
  }
  out += rule();
  return out;
}

}  // namespace cloudburst
