#include "common/rng.hpp"

#include <cmath>

namespace cloudburst {

double Rng::normal(double mean, double stddev) {
  // Marsaglia polar method; we discard the second variate to keep the
  // generator stateless w.r.t. caller interleaving.
  while (true) {
    const double u = uniform(-1.0, 1.0);
    const double v = uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return mean + stddev * u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double Rng::exponential(double rate) {
  // Inverse CDF; 1 - U in (0,1] avoids log(0).
  return -std::log(1.0 - next_double()) / rate;
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  // Rejection-inversion sampling (W. Hormann & G. Derflinger). Good for the
  // skewed key/file popularity draws used by workload generators.
  if (n <= 1) return 0;
  const double nd = static_cast<double>(n);
  auto h = [s](double x) {
    return s == 1.0 ? std::log(x) : (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
  };
  auto h_inv = [s](double x) {
    return s == 1.0 ? std::exp(x) : std::pow(1.0 + x * (1.0 - s), 1.0 / (1.0 - s));
  };
  const double hx0 = h(0.5) - 1.0;  // extend envelope below 1
  const double hn = h(nd + 0.5);
  while (true) {
    const double u = hx0 + next_double() * (hn - hx0);
    const double x = h_inv(u);
    const std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
    const std::uint64_t clamped = k < 1 ? 1 : (k > n ? n : k);
    const double kd = static_cast<double>(clamped);
    if (u >= h(kd + 0.5) - std::pow(kd, -s)) {
      return clamped - 1;  // zero-based rank
    }
  }
}

}  // namespace cloudburst
