// Byte, time, and bandwidth unit helpers used throughout cloudburst.
//
// Simulated time is kept in integer nanoseconds (see des/sim_time.hpp);
// human-facing configuration uses doubles in SI units (seconds, bytes/second).
// The helpers here make unit provenance explicit at call sites, e.g.
// `units::MiB(128)` or `units::mbps(100.0)`.
#pragma once

#include <cstdint>
#include <string>

namespace cloudburst::units {

// --- byte sizes -----------------------------------------------------------

constexpr std::uint64_t KiB(std::uint64_t n) { return n << 10; }
constexpr std::uint64_t MiB(std::uint64_t n) { return n << 20; }
constexpr std::uint64_t GiB(std::uint64_t n) { return n << 30; }

constexpr std::uint64_t KB(std::uint64_t n) { return n * 1000ULL; }
constexpr std::uint64_t MB(std::uint64_t n) { return n * 1000ULL * 1000ULL; }
constexpr std::uint64_t GB(std::uint64_t n) { return n * 1000ULL * 1000ULL * 1000ULL; }

// --- bandwidth (bytes per second) -----------------------------------------

/// Megabits per second -> bytes per second.
constexpr double mbps(double v) { return v * 1e6 / 8.0; }
/// Gigabits per second -> bytes per second.
constexpr double gbps(double v) { return v * 1e9 / 8.0; }
/// Megabytes per second -> bytes per second.
constexpr double MBps(double v) { return v * 1e6; }
/// Gibibytes per second -> bytes per second.
constexpr double GiBps(double v) { return v * 1073741824.0; }

// --- time (seconds) --------------------------------------------------------

constexpr double ms(double v) { return v * 1e-3; }
constexpr double us(double v) { return v * 1e-6; }
constexpr double minutes(double v) { return v * 60.0; }

// --- formatting ------------------------------------------------------------

/// "12.0 GiB", "128.0 MiB", "512 B" — for log lines and bench tables.
std::string format_bytes(std::uint64_t bytes);

/// "123.4 s", "56.7 ms" — seconds in, human string out.
std::string format_seconds(double seconds);

/// "1.25 GB/s", "100.0 Mb/s" style bandwidth formatting (bytes/sec in).
std::string format_bandwidth(double bytes_per_second);

}  // namespace cloudburst::units
