// Unbounded MPMC blocking queue used by the real (shared-memory) engines.
//
// pop() blocks until an item arrives or the queue is closed; close() wakes all
// waiters and makes further pops drain the backlog then report emptiness.
// This mirrors the slave "request job / process job" loop of the middleware
// in its in-process form.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace cloudburst {

template <typename T>
class BlockingQueue {
 public:
  /// Enqueue; returns false (drops the item) if the queue is already closed.
  bool push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Dequeue, blocking. std::nullopt means closed *and* drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking dequeue.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// No more pushes; wakes all blocked consumers.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace cloudburst
