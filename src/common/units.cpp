#include "common/units.hpp"

#include <array>
#include <cstdio>

namespace cloudburst::units {

std::string format_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> kSuffix = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  std::size_t idx = 0;
  while (value >= 1024.0 && idx + 1 < kSuffix.size()) {
    value /= 1024.0;
    ++idx;
  }
  char buf[64];
  if (idx == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, kSuffix[idx]);
  }
  return buf;
}

std::string format_seconds(double seconds) {
  char buf[64];
  if (seconds < 0) {
    std::snprintf(buf, sizeof(buf), "-%s", format_seconds(-seconds).c_str());
  } else if (seconds < 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.1f ns", seconds * 1e9);
  } else if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f s", seconds);
  }
  return buf;
}

std::string format_bandwidth(double bytes_per_second) {
  char buf[64];
  if (bytes_per_second >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f GB/s", bytes_per_second / 1e9);
  } else if (bytes_per_second >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f MB/s", bytes_per_second / 1e6);
  } else if (bytes_per_second >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2f KB/s", bytes_per_second / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f B/s", bytes_per_second);
  }
  return buf;
}

}  // namespace cloudburst::units
