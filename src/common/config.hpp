// key=value configuration parsing.
//
// Examples and benches accept small overrides ("wan_bandwidth_mbps=200")
// either from argv or from a config file; Config centralizes parsing and
// typed lookup with defaults.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace cloudburst {

class Config {
 public:
  Config() = default;

  /// Parse "key=value" tokens (unrecognized tokens throw). Later tokens
  /// override earlier ones.
  static Config from_args(const std::vector<std::string>& args);
  static Config from_args(int argc, char** argv);

  /// Parse a file of "key=value" lines; '#' starts a comment; blank lines ok.
  static Config from_string(const std::string& text);

  void set(const std::string& key, const std::string& value);
  bool contains(const std::string& key) const;

  std::string get_string(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// All keys in sorted order (for echoing effective configs).
  std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace cloudburst
