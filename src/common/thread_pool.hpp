// Fixed-size thread pool with a parallel_for helper.
//
// The real engines (engine/gr_engine, engine/mr_engine) use this to model the
// paper's slave threads within one node. Work is dynamic-chunked so faster
// threads naturally take more work — the same on-demand pooling idea the
// middleware uses between nodes and clusters.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/blocking_queue.hpp"

namespace cloudburst {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Fire-and-forget task.
  void submit(std::function<void()> task);

  /// Submit and get a future for the result.
  template <typename F>
  auto submit_task(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    submit([task] { (*task)(); });
    return task->get_future();
  }

  /// Run body(i) for i in [0, n) across the pool with dynamic chunking;
  /// blocks until every index has been processed. `grain` indices are
  /// claimed at a time to amortize the shared counter.
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t)>& body);

  /// Run body(thread_index) once on each of `k` workers concurrently and
  /// wait. Used for per-thread reduction-object setups.
  void run_on_all(std::size_t k, const std::function<void(std::size_t)>& body);

 private:
  BlockingQueue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
};

}  // namespace cloudburst
