// Streaming statistics and fixed-bin histograms.
//
// Used for run-result accounting (per-node busy/idle times), workload
// characterization, and bench table summaries. Welford's algorithm keeps the
// accumulator numerically stable for long runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cloudburst {

/// Streaming mean / variance / min / max accumulator (Welford).
class StatAccumulator {
 public:
  void add(double x);
  void merge(const StatAccumulator& other);

  std::size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? m_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

 private:
  std::size_t count_ = 0;
  double m_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width-bin histogram over [lo, hi); out-of-range samples clamp into
/// the first/last bin so totals always match count().
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t count() const { return total_; }
  std::size_t bin_count(std::size_t bin) const { return bins_.at(bin); }
  std::size_t bins() const { return bins_.size(); }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

  /// Linear-interpolated quantile estimate, q in [0,1].
  double quantile(double q) const;

  /// Multi-line ASCII rendering ("[lo, hi) ####  12").
  std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> bins_;
  std::size_t total_ = 0;
};

/// Exact-quantile helper for small sample sets (sorts a copy).
double exact_quantile(std::vector<double> samples, double q);

}  // namespace cloudburst
