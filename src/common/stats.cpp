#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace cloudburst {

void StatAccumulator::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - m_;
  m_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - m_);
}

void StatAccumulator::merge(const StatAccumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.m_ - m_;
  const double n = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  m_ += delta * nb / n;
  sum_ += other.sum_;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StatAccumulator::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double StatAccumulator::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi), bins_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram requires hi > lo and bins > 0");
  }
}

void Histogram::add(double x) {
  const double span = hi_ - lo_;
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / span * static_cast<double>(bins_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(bins_.size()) - 1);
  ++bins_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) / static_cast<double>(bins_.size());
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const double next = cum + static_cast<double>(bins_[i]);
    if (next >= target) {
      // Interpolate within the bin assuming uniform density.
      const double frac = bins_[i] ? (target - cum) / static_cast<double>(bins_[i]) : 0.0;
      return bin_lo(i) + frac * (bin_hi(i) - bin_lo(i));
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 0;
  for (auto c : bins_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const std::size_t bar =
        peak ? (bins_[i] * width + peak - 1) / peak : 0;  // ceil keeps nonzero bins visible
    std::snprintf(line, sizeof(line), "[%10.3g, %10.3g) %-*s %zu\n", bin_lo(i), bin_hi(i),
                  static_cast<int>(width), std::string(bar, '#').c_str(), bins_[i]);
    out += line;
  }
  return out;
}

double exact_quantile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace cloudburst
