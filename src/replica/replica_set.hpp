// Chunk replication over the platform's stores.
//
// The paper's middleware reads every chunk from the single store that owns
// its file; a remote read always crosses the WAN to that one store, and a
// store fault stalls the read until retries succeed. Sector/Sphere showed
// that a data cloud gets fast by replicating segments across the wide area
// and steering reads to the nearest replica. A ReplicaSet brings that to the
// simulated platform:
//
//  * k-way placement over the existing stores, pluggable policy —
//    cross-site spread (fault isolation), same-site (cheap repair, no WAN
//    diversity), or hot-chunk-only (extra copies earned by cache/prefetch
//    hit counts — or plain fetch counts when no cache is attached —
//    instead of paid up front);
//  * a route oracle: resolve(chunk, reader site, now) picks the cheapest
//    *live* replica by WAN cost, penalizing stores inside a throttle window,
//    with a configured failure probability, or recently implicated in a
//    fault ("suspect");
//  * replica health: failed GETs mark a copy lost, successful ones revive
//    it, and plan_repairs() hands a background repair actor the transfers
//    that bring every chunk back to its target copy count.
//
// The set is caller-owned and survives platform rebuilds (iterative runs):
// attach() builds placement on first use and re-targets the platform pointer
// afterwards, keeping lost/hot/suspect state across passes. Nothing here is
// reachable unless RunOptions::replication points at an instance, so default
// runs stay byte-identical to the paper model.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "cluster/platform.hpp"
#include "storage/data_layout.hpp"

namespace cloudburst::replica {

enum class PlacementPolicy : std::uint8_t {
  /// Extra copies on the stores cheapest to reach from the primary's site.
  /// With one store per site this degenerates to the nearest *other* sites,
  /// ordered by WAN cost — "same-site" names the intent (replicas cluster
  /// around the primary), not a literal co-located copy.
  SameSite,
  /// Extra copies spread deterministically across the other sites' stores,
  /// maximizing the chance a reader finds a replica off the faulted path.
  CrossSite,
  /// No extra copies up front; a chunk earns its k copies once its heat
  /// source promotes it to "hot" (record_hit / record_fetch reaches
  /// hot_threshold — see HeatSource), after which the repair actor
  /// replicates it like any under-replicated chunk. Placement of earned
  /// copies follows the CrossSite spread.
  HotChunk,
};

const char* to_string(PlacementPolicy policy);

/// Where HotChunk promotion heat comes from. With a CacheFleet attached,
/// cache/prefetch hits (record_hit) are the signal; without one the set falls
/// back to plain per-chunk fetch counts (record_fetch) so the policy still
/// promotes — the middleware picks the source at setup and logs it.
enum class HeatSource : std::uint8_t {
  CacheHits,
  FetchCounts,
};

const char* to_string(HeatSource source);

struct ReplicationConfig {
  /// Target copies per chunk, primary included; clamped to the store count.
  /// k = 1 keeps only primaries (useful as the sweep baseline).
  unsigned replication_factor = 2;
  PlacementPolicy placement = PlacementPolicy::CrossSite;

  /// HotChunk: cache/prefetch hits on a chunk before it is promoted to the
  /// full replication_factor.
  unsigned hot_threshold = 2;

  /// Background repair actor: scan cadence and transfers in flight at once.
  double repair_interval_seconds = 5.0;
  unsigned repair_concurrency = 2;

  /// How long a store implicated in a fault (failed GET, lifecycle loss on
  /// its site) is penalized by the route oracle.
  double suspect_seconds = 120.0;

  /// Seed for the deterministic hash that breaks routing ties left over
  /// after the outstanding-bytes comparison (see resolve()).
  std::uint64_t route_seed = 0x9e3779b97f4a7c15ull;
};

class ReplicaSet {
 public:
  explicit ReplicaSet(ReplicationConfig config = {});

  /// Bind to a built platform. First call derives placement and the WAN cost
  /// matrix from the layout/spec; later calls (iterative passes, workload
  /// jobs sharing the set) only re-point the platform and must present the
  /// same dataset geometry. Throws std::invalid_argument on mismatch.
  void attach(const storage::DataLayout& layout, const cluster::Platform& platform);
  bool built() const { return built_; }
  const ReplicationConfig& config() const { return config_; }

  /// (chunk, store) pairs of the non-primary copies created by the initial
  /// placement — the ReplicaCreated trace feed.
  const std::vector<std::pair<storage::ChunkId, storage::StoreId>>& initial_extras() const {
    return initial_extras_;
  }

  // --- routing --------------------------------------------------------------

  /// Cheapest live replica for a reader at `reader_site`, by WAN transfer
  /// cost plus fault/throttle/suspect penalties at time `now`. Falls back to
  /// the primary when every copy is marked lost (the caller's retry loop
  /// deals with the store as it finds it). Equal-cost copies split load:
  /// ties go to the store with the fewest outstanding routed bytes, and
  /// residual ties fall to a seeded deterministic hash of (chunk, store) —
  /// never blindly to the lowest store id, which would pile every reader
  /// onto one copy. The chosen store is charged the chunk's bytes until
  /// note_fetch_ok / mark_lost / settle_route settles the fetch.
  storage::StoreId resolve(storage::ChunkId chunk, cluster::ClusterId reader_site,
                           double now) const;

  /// Bytes resolve() has routed at `store` that no settle has cleared yet —
  /// the tie-break load signal.
  std::uint64_t routed_bytes(storage::StoreId store) const {
    return store < routed_bytes_.size() ? routed_bytes_[store] : 0;
  }

  /// Clear a resolve() charge without touching replica health (fetch paths
  /// that don't report ok/lost, e.g. an aborted prefetch).
  void settle_route(storage::ChunkId chunk, storage::StoreId store);

  /// The score resolve() minimizes, for the chosen replica — the scheduler's
  /// CheapestReplica policy ranks candidate steals with this.
  double route_cost(storage::ChunkId chunk, cluster::ClusterId reader_site,
                    double now) const;

  /// True when `store` holds a live copy of `chunk`.
  bool is_live(storage::ChunkId chunk, storage::StoreId store) const;

  // --- replica health -------------------------------------------------------

  /// A GET against `store` failed past retry: mark that copy lost and the
  /// store suspect. Returns true when the copy was live until now (callers
  /// trace ReplicaLost exactly once per transition).
  bool mark_lost(storage::ChunkId chunk, storage::StoreId store, double now);

  /// A GET against `store` delivered: revive the copy if a transient fault
  /// had it marked lost.
  void note_fetch_ok(storage::ChunkId chunk, storage::StoreId store);

  /// Penalize a store (or a site's affinity store) in routing for
  /// config().suspect_seconds — lifecycle losses route around the site.
  void mark_store_suspect(storage::StoreId store, double now);
  void mark_site_suspect(cluster::ClusterId site, double now);

  /// Cache/prefetch hit on `chunk` (HotChunk promotion input when the heat
  /// source is CacheHits; no-op otherwise).
  void record_hit(storage::ChunkId chunk);

  /// Demand fetch of `chunk` (HotChunk promotion input when the heat source
  /// is FetchCounts; no-op otherwise).
  void record_fetch(storage::ChunkId chunk);

  /// HotChunk promotion signal; the middleware selects CacheHits when a
  /// CacheFleet is attached and FetchCounts otherwise.
  void set_heat_source(HeatSource source) { heat_source_ = source; }
  HeatSource heat_source() const { return heat_source_; }

  /// Copies this chunk should have right now (HotChunk: 1 until promoted).
  unsigned target_copies(storage::ChunkId chunk) const;

  // --- repair ---------------------------------------------------------------

  struct RepairTask {
    storage::ChunkId chunk = 0;
    storage::StoreId src = storage::kInvalidStore;
    storage::StoreId dst = storage::kInvalidStore;
  };

  /// Up to `max_tasks` transfers that raise under-replicated chunks toward
  /// their target copy count, lowest chunk id first. Planned chunks are
  /// marked in-flight until repair_done() so overlapping planners (one per
  /// concurrent job sharing the set) never duplicate a transfer.
  std::vector<RepairTask> plan_repairs(std::size_t max_tasks, double now);

  /// Settle a planned transfer; ok installs a live copy at task.dst.
  void repair_done(const RepairTask& task, bool ok, double now);

  // --- accounting -----------------------------------------------------------

  /// Live non-primary replica bytes per store id — the storage the cost
  /// model bills on top of the layout's resident bytes.
  std::vector<std::uint64_t> extra_bytes_per_store() const;

  std::uint32_t replicas_created() const { return created_; }
  std::uint32_t replicas_lost() const { return lost_; }
  std::uint32_t replicas_repaired() const { return repaired_; }
  std::size_t store_count() const { return store_sites_.size(); }

 private:
  struct ChunkState {
    /// Replica locations; index 0 is the layout primary.
    std::vector<storage::StoreId> stores;
    std::vector<bool> live;
    std::uint32_t hits = 0;
    bool hot = false;
    bool repair_pending = false;
  };

  void build(const storage::DataLayout& layout, const cluster::Platform& platform);
  double pair_cost_seconds(const cluster::PlatformSpec& spec, cluster::ClusterId a,
                           cluster::ClusterId b) const;
  /// Routing score of reading `chunk`'s copy on `store` from `reader_site`.
  double store_score(storage::StoreId store, cluster::ClusterId reader_site,
                     double now) const;
  /// CrossSite/HotChunk spread target for copy j of chunk c.
  storage::StoreId spread_store(storage::ChunkId chunk, storage::StoreId primary,
                                unsigned copy_index) const;
  storage::StoreId pick_repair_destination(const ChunkState& state,
                                           storage::ChunkId chunk, double now) const;
  unsigned live_count(const ChunkState& state) const;
  std::uint64_t route_hash(storage::ChunkId chunk, storage::StoreId store) const;
  void bump_heat(ChunkState& st);

  ReplicationConfig config_;
  bool built_ = false;
  const cluster::Platform* platform_ = nullptr;

  std::vector<ChunkState> chunks_;
  std::vector<std::uint64_t> chunk_bytes_;          ///< full (uncompressed) bytes
  std::vector<cluster::ClusterId> store_sites_;     ///< owning site per store
  std::vector<std::vector<double>> wan_cost_;       ///< [site][site] ref-transfer seconds
  std::vector<double> suspect_until_;               ///< per store
  /// In-flight bytes charged by resolve(); mutable because routing is a
  /// logically-const query whose load signal must still update.
  mutable std::vector<std::uint64_t> routed_bytes_;
  HeatSource heat_source_ = HeatSource::CacheHits;
  std::vector<std::pair<storage::ChunkId, storage::StoreId>> initial_extras_;

  std::uint32_t created_ = 0;
  std::uint32_t lost_ = 0;
  std::uint32_t repaired_ = 0;
};

}  // namespace cloudburst::replica
