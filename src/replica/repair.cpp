#include "replica/repair.hpp"

#include <utility>

namespace cloudburst::replica {

RepairActor::RepairActor(ReplicaSet& set, Env env)
    : set_(set), env_(std::move(env)) {}

void RepairActor::start() {
  env_.schedule(set_.config().repair_interval_seconds, [this] { tick(); });
}

void RepairActor::tick() {
  if (env_.stopped()) return;  // no reschedule: lets the event queue drain
  const unsigned budget = set_.config().repair_concurrency;
  if (inflight_ < budget) {
    const double now = env_.now();
    for (const ReplicaSet::RepairTask& task :
         set_.plan_repairs(budget - inflight_, now)) {
      ++inflight_;
      ++started_;
      env_.transfer(task, [this, task](bool ok) {
        --inflight_;
        set_.repair_done(task, ok, env_.now());
        if (ok) {
          if (env_.trace) env_.trace(trace::EventKind::ReplicaRepaired, task.chunk, task.dst);
          if (env_.on_repaired) env_.on_repaired(task);
        }
      });
    }
  }
  env_.schedule(set_.config().repair_interval_seconds, [this] { tick(); });
}

}  // namespace cloudburst::replica
