// Background replica repair actor.
//
// Periodically asks its ReplicaSet for under-replicated chunks and runs the
// store-to-store transfers that bring them back to target copy count —
// Sector's replica maintenance daemon, scaled down to one actor per run. The
// actor is environment-injected like the prefetcher: the middleware binds
// `transfer` to a fetch_with_retry from the source store to the destination
// store's endpoint (so repair traffic rides the same WAN flows, fault model,
// and egress accounting as any other read) and `stopped` to the run's
// finished flag, which is what terminates the tick loop — an unguarded
// periodic event would keep the DES queue alive forever.
#pragma once

#include <cstdint>
#include <functional>

#include "replica/replica_set.hpp"
#include "trace/trace.hpp"

namespace cloudburst::replica {

class RepairActor {
 public:
  struct Env {
    std::function<double()> now;
    /// schedule(delay_seconds, fn): run fn after the delay.
    std::function<void(double, std::function<void()>)> schedule;
    /// Run is over — stop rescheduling, ignore late completions' planning.
    std::function<bool()> stopped;
    /// Copy task.chunk from task.src to task.dst; done(ok) when settled.
    std::function<void(const ReplicaSet::RepairTask&, std::function<void(bool)>)> transfer;
    /// trace(kind, a, b) — ReplicaRepaired events.
    std::function<void(trace::EventKind, std::uint64_t, std::uint64_t)> trace;
    /// Successful repair landed (accounting hook).
    std::function<void(const ReplicaSet::RepairTask&)> on_repaired;
  };

  RepairActor(ReplicaSet& set, Env env);

  /// Schedule the first scan one repair interval from now.
  void start();

  std::uint32_t transfers_started() const { return started_; }

 private:
  void tick();

  ReplicaSet& set_;
  Env env_;
  unsigned inflight_ = 0;
  std::uint32_t started_ = 0;
};

}  // namespace cloudburst::replica
