#include "replica/replica_set.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace cloudburst::replica {

namespace {

/// Reference transfer the WAN cost matrix prices: one typical chunk's worth
/// of bytes. Only the *ranking* of routes matters, so any size in the right
/// ballpark works; 128 MB matches the paper's chunk scale.
constexpr double kRefBytes = 128.0 * 1024.0 * 1024.0;

/// Score penalties, in seconds-equivalent of the reference transfer.
///
/// kFailWeight prices one unit of failure probability: the expected extra
/// latency of a fault is roughly one retry backoff plus a slice of the
/// attempt-timeout risk — seconds, not minutes. Keeping the weight honest
/// matters: a 5 %-faulty store should only lose to a replica whose WAN path
/// costs less than the expected fault latency (0.05 × 8 = 0.4 s), not drive
/// every reader onto a congested cross-site link that is slower in
/// expectation. Stores *proven* bad are handled by the suspect mechanism,
/// whose penalty must dwarf any real transfer time.
constexpr double kFailWeight = 8.0;       ///< scaled by failure probability
constexpr double kSuspectPenalty = 1e6;

}  // namespace

const char* to_string(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::SameSite: return "same-site";
    case PlacementPolicy::CrossSite: return "cross-site";
    case PlacementPolicy::HotChunk: return "hot-chunk";
  }
  return "?";
}

const char* to_string(HeatSource source) {
  switch (source) {
    case HeatSource::CacheHits: return "cache-hits";
    case HeatSource::FetchCounts: return "fetch-counts";
  }
  return "?";
}

ReplicaSet::ReplicaSet(ReplicationConfig config) : config_(config) {
  if (config_.replication_factor == 0) {
    throw std::invalid_argument("replication_factor must be >= 1");
  }
  if (config_.repair_interval_seconds <= 0.0) {
    throw std::invalid_argument("repair_interval_seconds must be > 0");
  }
}

void ReplicaSet::attach(const storage::DataLayout& layout,
                        const cluster::Platform& platform) {
  if (!built_) {
    build(layout, platform);
    built_ = true;
    platform_ = &platform;
    return;
  }
  if (layout.chunks().size() != chunks_.size() ||
      platform.store_count() != store_sites_.size()) {
    throw std::invalid_argument(
        "ReplicaSet::attach: dataset/platform geometry changed under a built set");
  }
  platform_ = &platform;
}

void ReplicaSet::build(const storage::DataLayout& layout,
                       const cluster::Platform& platform) {
  const std::size_t stores = platform.store_count();
  if (stores == 0) {
    throw std::invalid_argument("ReplicaSet needs a platform with stores");
  }
  store_sites_.resize(stores);
  suspect_until_.assign(stores, 0.0);
  routed_bytes_.assign(stores, 0);
  for (storage::StoreId s = 0; s < stores; ++s) {
    store_sites_[s] = platform.owner_of_store(s);
  }

  const auto& spec = platform.spec();
  const std::size_t sites = spec.sites.size();
  wan_cost_.assign(sites, std::vector<double>(sites, 0.0));
  for (cluster::ClusterId a = 0; a < sites; ++a) {
    for (cluster::ClusterId b = 0; b < sites; ++b) {
      wan_cost_[a][b] = pair_cost_seconds(spec, a, b);
    }
  }

  const unsigned k = std::min<unsigned>(config_.replication_factor,
                                        static_cast<unsigned>(stores));
  chunks_.resize(layout.chunks().size());
  chunk_bytes_.resize(layout.chunks().size());
  for (const storage::ChunkInfo& info : layout.chunks()) {
    ChunkState& st = chunks_[info.id];
    chunk_bytes_[info.id] = info.bytes;
    const storage::StoreId primary = layout.store_of(info.id);
    st.stores = {primary};
    st.live = {true};
    if (config_.placement == PlacementPolicy::HotChunk) continue;  // earn copies later
    for (unsigned j = 0; j + 1 < k; ++j) {
      storage::StoreId dst = storage::kInvalidStore;
      if (config_.placement == PlacementPolicy::CrossSite) {
        dst = spread_store(info.id, primary, j);
      } else {  // SameSite: nearest stores to the primary's site, cost order
        double best = std::numeric_limits<double>::max();
        for (storage::StoreId s = 0; s < stores; ++s) {
          if (std::find(st.stores.begin(), st.stores.end(), s) != st.stores.end()) {
            continue;
          }
          const double c = wan_cost_[store_sites_[primary]][store_sites_[s]];
          if (c < best) {
            best = c;
            dst = s;
          }
        }
      }
      if (dst == storage::kInvalidStore) break;
      st.stores.push_back(dst);
      st.live.push_back(true);
      initial_extras_.emplace_back(info.id, dst);
      ++created_;
    }
  }
}

double ReplicaSet::pair_cost_seconds(const cluster::PlatformSpec& spec,
                                     cluster::ClusterId a, cluster::ClusterId b) const {
  if (a == b) return 0.0;
  double bandwidth = spec.wan_bandwidth;
  des::SimDuration latency = spec.wan_latency;
  for (const cluster::WanEdge& e : spec.wan_overrides) {
    if ((e.a == a && e.b == b) || (e.a == b && e.b == a)) {
      bandwidth = e.bandwidth;
      latency = e.latency;
      break;
    }
  }
  double cost = des::to_seconds(latency);
  if (bandwidth > 0.0) cost += kRefBytes / bandwidth;
  return cost;
}

storage::StoreId ReplicaSet::spread_store(storage::ChunkId chunk,
                                          storage::StoreId primary,
                                          unsigned copy_index) const {
  const std::size_t stores = store_sites_.size();
  if (stores < 2) return storage::kInvalidStore;
  // Deterministic spread: copy j of chunk c lands 1 + ((c + j) mod (S-1))
  // stores past the primary, so consecutive chunks fan their copies across
  // all other stores and a chunk's own copies stay distinct (j < S-1).
  const std::size_t offset = 1 + ((chunk + copy_index) % (stores - 1));
  return static_cast<storage::StoreId>((primary + offset) % stores);
}

double ReplicaSet::store_score(storage::StoreId store, cluster::ClusterId reader_site,
                               double now) const {
  double score = wan_cost_[reader_site][store_sites_[store]];
  if (suspect_until_[store] > now) score += kSuspectPenalty;
  const auto& site_spec = platform_->spec().sites.at(store_sites_[store]);
  if (site_spec.store.has_value()) {
    const storage::FaultProfile& fault = site_spec.store->fault;
    double p_fail = fault.fail_probability;
    for (const auto& w : fault.throttles) {
      // Window membership uses the store's own convention: inclusive begin,
      // exclusive end (see storage/fault.hpp).
      if (now >= w.begin_seconds && now < w.end_seconds) {
        p_fail = std::min(1.0, p_fail + w.fail_probability);
        if (w.bandwidth_factor > 0.0 && w.bandwidth_factor < 1.0) {
          // A throttled stream takes 1/factor as long; charge the slowdown
          // on the reference transfer.
          score += (1.0 / w.bandwidth_factor - 1.0) *
                   wan_cost_[reader_site][store_sites_[store]];
        }
      }
    }
    score += p_fail * kFailWeight;
  }
  return score;
}

std::uint64_t ReplicaSet::route_hash(storage::ChunkId chunk,
                                     storage::StoreId store) const {
  // splitmix64 over (seed, chunk, store): a stable per-pair coin that keeps
  // residual ties deterministic across runs without favoring low store ids.
  std::uint64_t x = config_.route_seed ^ (static_cast<std::uint64_t>(chunk) << 32) ^
                    (static_cast<std::uint64_t>(store) + 1);
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

storage::StoreId ReplicaSet::resolve(storage::ChunkId chunk,
                                     cluster::ClusterId reader_site, double now) const {
  const ChunkState& st = chunks_.at(chunk);
  storage::StoreId best = st.stores.front();  // primary fallback
  double best_score = std::numeric_limits<double>::max();
  bool any_live = false;
  for (std::size_t i = 0; i < st.stores.size(); ++i) {
    if (!st.live[i]) continue;
    const storage::StoreId cand = st.stores[i];
    const double score = store_score(cand, reader_site, now);
    bool take = !any_live || score < best_score;
    if (!take && score == best_score && cand != best) {
      // Equal-cost copies share load: least outstanding routed bytes first,
      // then a seeded hash so a fully-idle tie still alternates per chunk.
      const std::uint64_t cand_load = routed_bytes_[cand];
      const std::uint64_t best_load = routed_bytes_[best];
      take = cand_load < best_load ||
             (cand_load == best_load &&
              route_hash(chunk, cand) < route_hash(chunk, best));
    }
    if (take) {
      best_score = score;
      best = cand;
    }
    any_live = true;
  }
  if (!any_live) return st.stores.front();
  routed_bytes_[best] += chunk_bytes_.at(chunk);
  return best;
}

void ReplicaSet::settle_route(storage::ChunkId chunk, storage::StoreId store) {
  if (store >= routed_bytes_.size()) return;
  const std::uint64_t bytes = chunk < chunk_bytes_.size() ? chunk_bytes_[chunk] : 0;
  routed_bytes_[store] -= std::min(routed_bytes_[store], bytes);
}

double ReplicaSet::route_cost(storage::ChunkId chunk, cluster::ClusterId reader_site,
                              double now) const {
  const ChunkState& st = chunks_.at(chunk);
  double best = std::numeric_limits<double>::max();
  for (std::size_t i = 0; i < st.stores.size(); ++i) {
    if (!st.live[i]) continue;
    best = std::min(best, store_score(st.stores[i], reader_site, now));
  }
  if (best == std::numeric_limits<double>::max()) {
    best = store_score(st.stores.front(), reader_site, now);
  }
  return best;
}

bool ReplicaSet::is_live(storage::ChunkId chunk, storage::StoreId store) const {
  const ChunkState& st = chunks_.at(chunk);
  for (std::size_t i = 0; i < st.stores.size(); ++i) {
    if (st.stores[i] == store) return st.live[i];
  }
  return false;
}

bool ReplicaSet::mark_lost(storage::ChunkId chunk, storage::StoreId store, double now) {
  settle_route(chunk, store);  // the routed fetch ended (in failure)
  mark_store_suspect(store, now);
  ChunkState& st = chunks_.at(chunk);
  for (std::size_t i = 0; i < st.stores.size(); ++i) {
    if (st.stores[i] != store) continue;
    if (!st.live[i]) return false;
    st.live[i] = false;
    ++lost_;
    return true;
  }
  return false;
}

void ReplicaSet::note_fetch_ok(storage::ChunkId chunk, storage::StoreId store) {
  settle_route(chunk, store);
  ChunkState& st = chunks_.at(chunk);
  for (std::size_t i = 0; i < st.stores.size(); ++i) {
    if (st.stores[i] == store && !st.live[i]) {
      // The fault was transient after all — the copy is demonstrably there.
      st.live[i] = true;
      return;
    }
  }
}

void ReplicaSet::mark_store_suspect(storage::StoreId store, double now) {
  if (store >= suspect_until_.size()) return;
  suspect_until_[store] =
      std::max(suspect_until_[store], now + config_.suspect_seconds);
}

void ReplicaSet::mark_site_suspect(cluster::ClusterId site, double now) {
  if (platform_ == nullptr) return;
  const storage::StoreId store = platform_->store_of_cluster(site);
  if (store == storage::kInvalidStore) return;
  mark_store_suspect(store, now);
}

void ReplicaSet::bump_heat(ChunkState& st) {
  if (st.hot) return;
  if (++st.hits >= config_.hot_threshold) st.hot = true;
}

void ReplicaSet::record_hit(storage::ChunkId chunk) {
  if (config_.placement != PlacementPolicy::HotChunk ||
      heat_source_ != HeatSource::CacheHits) {
    return;
  }
  bump_heat(chunks_.at(chunk));
}

void ReplicaSet::record_fetch(storage::ChunkId chunk) {
  if (config_.placement != PlacementPolicy::HotChunk ||
      heat_source_ != HeatSource::FetchCounts) {
    return;
  }
  bump_heat(chunks_.at(chunk));
}

unsigned ReplicaSet::target_copies(storage::ChunkId chunk) const {
  const unsigned k = std::min<unsigned>(config_.replication_factor,
                                        static_cast<unsigned>(store_sites_.size()));
  if (config_.placement == PlacementPolicy::HotChunk && !chunks_.at(chunk).hot) {
    return 1;
  }
  return k;
}

unsigned ReplicaSet::live_count(const ChunkState& state) const {
  return static_cast<unsigned>(
      std::count(state.live.begin(), state.live.end(), true));
}

storage::StoreId ReplicaSet::pick_repair_destination(const ChunkState& state,
                                                     storage::ChunkId chunk,
                                                     double now) const {
  // Eligible: any store without a live copy. Prefer non-suspect stores; among
  // those, SameSite keeps copies near the primary while the spread policies
  // walk the deterministic CrossSite order so repaired copies land where the
  // initial placement would have put them.
  const storage::StoreId primary = state.stores.front();
  auto eligible = [&](storage::StoreId s) {
    for (std::size_t i = 0; i < state.stores.size(); ++i) {
      if (state.stores[i] == s && state.live[i]) return false;
    }
    return true;
  };
  storage::StoreId best = storage::kInvalidStore;
  double best_rank = std::numeric_limits<double>::max();
  for (std::size_t j = 0; j + 1 < store_sites_.size(); ++j) {
    storage::StoreId s;
    if (config_.placement == PlacementPolicy::SameSite) {
      s = static_cast<storage::StoreId>(j >= primary ? j + 1 : j);  // all but primary
    } else {
      s = spread_store(chunk, primary, static_cast<unsigned>(j));
    }
    if (!eligible(s)) continue;
    double rank = config_.placement == PlacementPolicy::SameSite
                      ? wan_cost_[store_sites_[primary]][store_sites_[s]]
                      : static_cast<double>(j);
    if (suspect_until_[s] > now) rank += kSuspectPenalty;
    if (rank < best_rank) {
      best_rank = rank;
      best = s;
    }
  }
  if (best == storage::kInvalidStore && eligible(primary) &&
      suspect_until_[primary] <= now) {
    best = primary;  // re-create a lost primary copy from a surviving replica
  }
  return best;
}

std::vector<ReplicaSet::RepairTask> ReplicaSet::plan_repairs(std::size_t max_tasks,
                                                             double now) {
  std::vector<RepairTask> out;
  if (max_tasks == 0) return out;
  for (storage::ChunkId c = 0; c < chunks_.size(); ++c) {
    ChunkState& st = chunks_[c];
    if (st.repair_pending) continue;
    const unsigned live = live_count(st);
    if (live == 0) continue;  // nothing to copy from; reads fall back to the primary
    if (live >= target_copies(c)) continue;
    // Source: the healthiest live copy (suspect stores only as a last resort).
    storage::StoreId src = storage::kInvalidStore;
    double src_rank = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < st.stores.size(); ++i) {
      if (!st.live[i]) continue;
      const double rank =
          (suspect_until_[st.stores[i]] > now ? kSuspectPenalty : 0.0) + st.stores[i];
      if (rank < src_rank) {
        src_rank = rank;
        src = st.stores[i];
      }
    }
    const storage::StoreId dst = pick_repair_destination(st, c, now);
    if (src == storage::kInvalidStore || dst == storage::kInvalidStore) continue;
    st.repair_pending = true;
    out.push_back(RepairTask{c, src, dst});
    if (out.size() >= max_tasks) break;
  }
  return out;
}

void ReplicaSet::repair_done(const RepairTask& task, bool ok, double now) {
  ChunkState& st = chunks_.at(task.chunk);
  st.repair_pending = false;
  if (!ok) {
    // The source failed to deliver; treat it like any other failed GET so the
    // next planning pass reaches for a different source.
    mark_store_suspect(task.src, now);
    return;
  }
  ++repaired_;
  for (std::size_t i = 0; i < st.stores.size(); ++i) {
    if (st.stores[i] == task.dst) {
      st.live[i] = true;
      return;
    }
  }
  st.stores.push_back(task.dst);
  st.live.push_back(true);
}

std::vector<std::uint64_t> ReplicaSet::extra_bytes_per_store() const {
  std::vector<std::uint64_t> out(store_sites_.size(), 0);
  for (storage::ChunkId c = 0; c < chunks_.size(); ++c) {
    const ChunkState& st = chunks_[c];
    for (std::size_t i = 1; i < st.stores.size(); ++i) {  // index 0 = primary
      if (st.live[i]) out[st.stores[i]] += chunk_bytes_[c];
    }
  }
  return out;
}

}  // namespace cloudburst::replica
