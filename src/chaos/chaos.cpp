#include "chaos/chaos.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "common/rng.hpp"

namespace cloudburst::chaos {

namespace {

/// Substream lanes inside the plan seed — one per draw category so adding a
/// fault kind never shifts another kind's schedule.
enum PlanStream : std::uint64_t {
  kLinkStream = 1,
  kStoreStream = 2,
  kCrashStream = 3,
  kDrainStream = 4,
  kSpotStream = 5,
  kSiteStream = 6,
};

/// A random site other than `avoid` (uniform over the rest).
cluster::ClusterId pick_site(Rng& rng, std::uint32_t sites, cluster::ClusterId avoid) {
  const auto pick = static_cast<cluster::ClusterId>(
      rng.uniform_int(0, static_cast<std::int64_t>(sites) - 2));
  return pick >= avoid ? pick + 1 : pick;
}

char line_buf[192];

bool close_usd(double a, double b) {
  // Bills accumulate across many jobs; scale the tolerance to the amounts.
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= 1e-6 * scale;
}

}  // namespace

ChaosPlan random_plan(const RandomPlanOptions& opts) {
  if (opts.sites < 2) {
    throw std::invalid_argument("chaos::random_plan: need at least two sites");
  }
  if (opts.protected_site >= opts.sites) {
    throw std::invalid_argument("chaos::random_plan: protected_site out of range");
  }
  const double horizon = std::max(1.0, opts.horizon_seconds);
  const double max_window = std::max(1.0, opts.max_window_seconds);

  ChaosPlan plan;
  plan.events.reserve(opts.link_faults + opts.store_outages + opts.node_crashes +
                      opts.node_drains + opts.spot_reclaims + opts.site_outages);

  Rng link_rng = Rng::substream(opts.seed, kLinkStream);
  for (std::uint32_t i = 0; i < opts.link_faults; ++i) {
    ChaosEvent ev;
    ev.kind = ChaosEvent::Kind::LinkFault;
    ev.site_a = static_cast<cluster::ClusterId>(
        link_rng.uniform_int(0, static_cast<std::int64_t>(opts.sites) - 1));
    ev.site_b = pick_site(link_rng, opts.sites, ev.site_a);
    ev.at_seconds = link_rng.uniform(0.0, horizon);
    ev.duration_seconds = link_rng.uniform(1.0, max_window);
    // Half the faults are hard cuts, half residual-bandwidth brownouts.
    ev.factor = link_rng.bernoulli(0.5) ? 0.0 : link_rng.uniform(0.05, 0.5);
    plan.events.push_back(ev);
  }

  Rng store_rng = Rng::substream(opts.seed, kStoreStream);
  for (std::uint32_t i = 0; i < opts.store_outages; ++i) {
    ChaosEvent ev;
    ev.kind = ChaosEvent::Kind::StoreOutage;
    ev.site_a = pick_site(store_rng, opts.sites, opts.protected_site);
    ev.at_seconds = store_rng.uniform(0.0, horizon);
    ev.duration_seconds = store_rng.uniform(1.0, max_window);
    plan.events.push_back(ev);
  }

  auto node_event = [&](Rng& rng, ChaosEvent::Kind kind) {
    ChaosEvent ev;
    ev.kind = kind;
    // Node faults also avoid the protected site: it may be a single-node
    // cluster (the paper testbed's local side), and losing a cluster's last
    // slave to a *graceful* drain is unsurvivable by design — the master
    // still holds the work and has nobody to grant it to.
    ev.site_a = pick_site(rng, opts.sites, opts.protected_site);
    ev.node_index = static_cast<std::uint32_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(std::max(1u, opts.nodes_per_site)) - 1));
    ev.at_seconds = rng.uniform(0.0, horizon);
    return ev;
  };

  Rng crash_rng = Rng::substream(opts.seed, kCrashStream);
  for (std::uint32_t i = 0; i < opts.node_crashes; ++i) {
    plan.events.push_back(node_event(crash_rng, ChaosEvent::Kind::NodeCrash));
  }
  Rng drain_rng = Rng::substream(opts.seed, kDrainStream);
  for (std::uint32_t i = 0; i < opts.node_drains; ++i) {
    plan.events.push_back(node_event(drain_rng, ChaosEvent::Kind::NodeDrain));
  }
  Rng spot_rng = Rng::substream(opts.seed, kSpotStream);
  for (std::uint32_t i = 0; i < opts.spot_reclaims; ++i) {
    ChaosEvent ev = node_event(spot_rng, ChaosEvent::Kind::SpotReclaim);
    ev.notice_seconds = spot_rng.uniform(10.0, 120.0);
    plan.events.push_back(ev);
  }

  Rng site_rng = Rng::substream(opts.seed, kSiteStream);
  for (std::uint32_t i = 0; i < opts.site_outages; ++i) {
    ChaosEvent ev;
    ev.kind = ChaosEvent::Kind::SiteOutage;
    ev.site_a = pick_site(site_rng, opts.sites, opts.protected_site);
    ev.at_seconds = site_rng.uniform(0.0, horizon);
    ev.duration_seconds = site_rng.uniform(1.0, max_window);
    plan.events.push_back(ev);
  }

  // Stable time order makes plans human-readable; scheduling does not
  // depend on it, but the auditor's failure messages do.
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) {
                     return a.at_seconds < b.at_seconds;
                   });
  return plan;
}

AuditResult audit_exactly_once(const std::vector<std::uint32_t>& executions) {
  for (std::size_t c = 0; c < executions.size(); ++c) {
    if (executions[c] == 0) {
      std::snprintf(line_buf, sizeof(line_buf),
                    "chunk %llu of completed work was lost (executed 0 times)",
                    static_cast<unsigned long long>(c));
      return AuditResult{false, line_buf};
    }
    if (executions[c] > 1) {
      std::snprintf(line_buf, sizeof(line_buf),
                    "chunk %llu executed %u times (re-granted work double-counted)",
                    static_cast<unsigned long long>(c), executions[c]);
      return AuditResult{false, line_buf};
    }
  }
  return AuditResult{};
}

AuditResult audit_bills(const workload::WorkloadResult& result) {
  cost::CostReport sum;
  for (const auto& job : result.jobs) {
    if (job.rejected && job.attributed_cost.total_usd() != 0.0) {
      std::snprintf(line_buf, sizeof(line_buf), "rejected job %u billed %.6f USD",
                    job.id, job.attributed_cost.total_usd());
      return AuditResult{false, line_buf};
    }
    sum.instance_hours += job.attributed_cost.instance_hours;
    sum.instance_usd += job.attributed_cost.instance_usd;
    sum.get_requests += job.attributed_cost.get_requests;
    sum.requests_usd += job.attributed_cost.requests_usd;
    sum.transfer_out_gb += job.attributed_cost.transfer_out_gb;
    sum.transfer_usd += job.attributed_cost.transfer_usd;
    sum.storage_gb += job.attributed_cost.storage_gb;
    sum.storage_usd += job.attributed_cost.storage_usd;
  }
  const cost::CostReport& p = result.platform_cost;
  if (sum.get_requests != p.get_requests) {
    std::snprintf(line_buf, sizeof(line_buf),
                  "GET requests: tenants sum %llu vs platform %llu",
                  static_cast<unsigned long long>(sum.get_requests),
                  static_cast<unsigned long long>(p.get_requests));
    return AuditResult{false, line_buf};
  }
  struct Component {
    const char* name;
    double tenants;
    double platform;
  } components[] = {
      {"instance_usd", sum.instance_usd, p.instance_usd},
      {"requests_usd", sum.requests_usd, p.requests_usd},
      {"transfer_usd", sum.transfer_usd, p.transfer_usd},
      {"storage_usd", sum.storage_usd, p.storage_usd},
      {"total_usd", sum.total_usd(), p.total_usd()},
  };
  for (const auto& c : components) {
    if (!close_usd(c.tenants, c.platform)) {
      std::snprintf(line_buf, sizeof(line_buf),
                    "bill component %s: tenants sum %.9f vs platform %.9f", c.name,
                    c.tenants, c.platform);
      return AuditResult{false, line_buf};
    }
  }
  return AuditResult{};
}

AuditResult audit_coverage(const replica::ReplicaSet& replicas,
                           const storage::DataLayout& layout) {
  if (!replicas.built()) {
    return AuditResult{false, "replica set never attached to a platform"};
  }
  const auto stores = static_cast<storage::StoreId>(replicas.store_count());
  for (const auto& chunk : layout.chunks()) {
    unsigned live = 0;
    for (storage::StoreId s = 0; s < stores; ++s) {
      if (replicas.is_live(chunk.id, s)) ++live;
    }
    const unsigned target = replicas.target_copies(chunk.id);
    if (live < target) {
      std::snprintf(line_buf, sizeof(line_buf),
                    "chunk %u holds %u live copies, target %u (repair incomplete)",
                    chunk.id, live, target);
      return AuditResult{false, line_buf};
    }
  }
  return AuditResult{};
}

AuditResult audit_replay(const std::string& trace_a, const std::string& trace_b) {
  if (trace_a == trace_b) return AuditResult{};
  // Find the first diverging line for the failure report.
  std::size_t pos = 0;
  std::size_t line = 1;
  const std::size_t n = std::min(trace_a.size(), trace_b.size());
  while (pos < n && trace_a[pos] == trace_b[pos]) {
    if (trace_a[pos] == '\n') ++line;
    ++pos;
  }
  std::snprintf(line_buf, sizeof(line_buf),
                "replay diverged at line %llu (byte %llu; sizes %llu vs %llu)",
                static_cast<unsigned long long>(line),
                static_cast<unsigned long long>(pos),
                static_cast<unsigned long long>(trace_a.size()),
                static_cast<unsigned long long>(trace_b.size()));
  return AuditResult{false, line_buf};
}

}  // namespace cloudburst::chaos
