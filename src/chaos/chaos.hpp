// Chaos plan generation and the post-run recovery auditor.
//
// random_plan() draws a seeded ChaosPlan so soak tests can hammer a run with
// hundreds of distinct fault schedules while staying perfectly replayable —
// the same seed always yields the same plan, and the same (plan, run seed)
// pair always yields the same simulation.
//
// The ChaosAuditor half checks the invariants that define "recovered" after
// a chaosed run:
//  * exactly-once — every chunk of completed work was executed exactly once
//    at the head (no loss, no double count), even across site blackouts
//    whose uncommitted work was re-granted to survivors;
//  * honest bills — per-tenant attributed costs sum component-by-component
//    to the platform bill (nothing billed twice, nothing vanishes);
//  * coverage restored — background repair brought every chunk back to its
//    target replica count;
//  * deterministic replay — two runs with the same seed and plan produce
//    bit-identical traces.
// Each audit returns AuditResult{ok, detail} rather than asserting, so the
// bench binary and the test suite share one implementation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/chaos_plan.hpp"
#include "replica/replica_set.hpp"
#include "storage/data_layout.hpp"
#include "workload/workload.hpp"

namespace cloudburst::chaos {

/// Knobs for the seeded plan generator. Counts are exact: the plan contains
/// precisely the requested number of events of each kind (placed at random
/// times/targets), so a soak can dial the fault mix deterministically.
struct RandomPlanOptions {
  std::uint64_t seed = 0xc4a05;
  std::uint32_t sites = 3;            ///< platform site count (site 0 = local)
  std::uint32_t nodes_per_site = 2;
  double horizon_seconds = 120.0;     ///< faults start in [0, horizon)
  double max_window_seconds = 30.0;   ///< recoverable-window length in (0, max]

  std::uint32_t link_faults = 2;
  std::uint32_t store_outages = 1;
  std::uint32_t node_crashes = 1;
  std::uint32_t node_drains = 1;
  std::uint32_t spot_reclaims = 1;
  std::uint32_t site_outages = 1;

  /// Never black out / store-fault / crash / drain / reclaim on this site
  /// (the head's home site must survive — validate_run rejects blackouts of
  /// it, and it may be a single-node cluster that cannot lose its last
  /// slave gracefully).
  cluster::ClusterId protected_site = 0;
};

/// Draw a plan from the options' seed. Deterministic; throws
/// std::invalid_argument when the options cannot be satisfied (fewer than
/// two sites, or every site protected).
ChaosPlan random_plan(const RandomPlanOptions& opts);

/// One audit's verdict: `ok` plus a human-readable reason on failure.
struct AuditResult {
  bool ok = true;
  std::string detail;
};

/// Exactly-once execution: `executions[c]` is how many times chunk c's work
/// landed in the final (head-merged) result — a counting reduction task
/// produces it. Fails on any count != 1.
AuditResult audit_exactly_once(const std::vector<std::uint32_t>& executions);

/// Honest billing: every job's attributed_cost sums component-by-component
/// to result.platform_cost (within floating-point tolerance), and no
/// rejected job carries a bill.
AuditResult audit_bills(const workload::WorkloadResult& result);

/// Replica coverage restored: every chunk holds at least target_copies()
/// live replicas (over the set's stores) once repair has run to quiescence.
AuditResult audit_coverage(const replica::ReplicaSet& replicas,
                           const storage::DataLayout& layout);

/// Deterministic replay: two serialized traces (to_jsonl) of the same
/// (seed, plan) run must be byte-identical; reports the first diverging
/// line on failure.
AuditResult audit_replay(const std::string& trace_a, const std::string& trace_b);

}  // namespace cloudburst::chaos
