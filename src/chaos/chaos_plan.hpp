// Scripted chaos: a seeded fault plan the middleware replays against a run.
//
// A ChaosPlan is pure data — a time-ordered (by convention, not requirement)
// list of fault windows spanning every axis the simulator models: WAN link
// degradation and inter-site partitions, store outages, node crashes, drains
// and spot reclaims, and whole-site blackouts with later recovery. The plan
// is attached via RunOptions::chaos; a null plan (the default) leaves every
// run byte-identical to the un-chaosed simulator.
//
// The split between this header and chaos.hpp is deliberate: the middleware
// only needs the plan *data* (so run_context.hpp can hold a pointer without
// a link-time dependency), while plan generation and the recovery auditor
// live in the cb_chaos library.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/platform.hpp"
#include "storage/data_layout.hpp"

namespace cloudburst::chaos {

struct ChaosEvent {
  enum class Kind : std::uint8_t {
    /// Degrade (or cut, factor = 0) the WAN link between site_a and site_b
    /// for duration_seconds; in-flight flows stall at the reduced rate and
    /// resume when the window closes.
    LinkFault,
    /// Cut every WAN link touching site_a — the site can still compute on
    /// local data but nothing crosses the wide area until recovery.
    SitePartition,
    /// Take site_a's store offline: new GETs fail fast, in-flight GETs
    /// abort, reads re-route to surviving replicas via the retry path.
    StoreOutage,
    /// Full blackout of site_a: links cut, store offline, every node killed,
    /// the site's master evacuated and its uncommitted work re-granted to
    /// surviving clusters. Recovery re-registers the site's services with
    /// the platform directory (fresh generation) for *future* work; nodes
    /// killed mid-job stay dead for that job.
    SiteOutage,
    /// Hard-kill node node_index of site_a (the per-job failure path:
    /// uncommitted work re-enters the pool after detection).
    NodeCrash,
    /// Graceful maintenance drain of node node_index of site_a.
    NodeDrain,
    /// Spot-market reclaim of node node_index of site_a with
    /// notice_seconds of warning before the hard kill.
    SpotReclaim,
  };

  Kind kind = Kind::LinkFault;
  cluster::ClusterId site_a = 0;
  cluster::ClusterId site_b = 0;   ///< LinkFault only: the link's far end
  std::uint32_t node_index = 0;    ///< node-scoped kinds: index within site_a
  double at_seconds = 0.0;         ///< window start (simulated time)
  /// Window length for LinkFault / SitePartition / StoreOutage / SiteOutage;
  /// <= 0 means the fault never recovers within the run.
  double duration_seconds = 0.0;
  /// LinkFault only: residual capacity fraction in [0, 1] (0 = hard down).
  double factor = 0.0;
  double notice_seconds = 120.0;   ///< SpotReclaim warning lead time
};

struct ChaosPlan {
  std::vector<ChaosEvent> events;

  bool empty() const { return events.empty(); }
};

}  // namespace cloudburst::chaos
