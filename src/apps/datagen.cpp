#include "apps/datagen.hpp"

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"

namespace cloudburst::apps {

std::vector<std::vector<float>> mixture_centers(const PointGenSpec& spec) {
  // Centers on a deterministic lattice-ish arrangement scaled by spread.
  Rng rng = Rng::substream(spec.seed, 0xce17e5);
  std::vector<std::vector<float>> centers(spec.mixture_components);
  for (auto& c : centers) {
    c.resize(spec.dim);
    for (auto& v : c) {
      v = static_cast<float>(rng.uniform(-spec.component_spread, spec.component_spread));
    }
  }
  return centers;
}

engine::MemoryDataset generate_points(const PointGenSpec& spec) {
  if (spec.count == 0 || spec.dim == 0 || spec.mixture_components == 0) {
    throw std::invalid_argument("generate_points: count, dim, components must be > 0");
  }
  const auto centers = mixture_centers(spec);
  const std::size_t unit = point_record_bytes(spec.dim);
  std::vector<std::byte> bytes(spec.count * unit);

  Rng rng = Rng::substream(spec.seed, 0x9017);
  std::vector<float> coords(spec.dim);
  for (std::size_t i = 0; i < spec.count; ++i) {
    const auto& center = centers[rng.next_below(centers.size())];
    for (std::size_t d = 0; d < spec.dim; ++d) {
      coords[d] = center[d] + static_cast<float>(rng.normal(0.0, spec.noise_sigma));
    }
    write_point(bytes.data() + i * unit, i, coords.data(), spec.dim);
  }
  return engine::MemoryDataset(std::move(bytes), unit);
}

engine::MemoryDataset generate_edges(const GraphGenSpec& spec) {
  if (spec.pages == 0) throw std::invalid_argument("generate_edges: pages must be > 0");
  if (spec.edges < spec.pages) {
    throw std::invalid_argument("generate_edges: need at least one edge per page");
  }
  std::vector<EdgeRecord> edges;
  edges.reserve(spec.edges);

  Rng rng = Rng::substream(spec.seed, 0xed9e);
  // Guaranteed out-edge per page (no dangling mass, see datagen.hpp).
  for (std::uint32_t p = 0; p < spec.pages; ++p) {
    std::uint32_t dst = static_cast<std::uint32_t>(rng.zipf(spec.pages, spec.popularity_skew));
    if (dst == p) dst = (dst + 1) % spec.pages;  // no self-loop
    edges.push_back(EdgeRecord{p, dst});
  }
  for (std::uint64_t e = spec.pages; e < spec.edges; ++e) {
    const auto src = static_cast<std::uint32_t>(rng.next_below(spec.pages));
    std::uint32_t dst = static_cast<std::uint32_t>(rng.zipf(spec.pages, spec.popularity_skew));
    if (dst == src) dst = (dst + 1) % spec.pages;
    edges.push_back(EdgeRecord{src, dst});
  }
  return engine::MemoryDataset::from_records(edges);
}

std::vector<std::uint32_t> out_degrees(const engine::MemoryDataset& edges,
                                       std::uint32_t pages) {
  if (edges.unit_bytes() != sizeof(EdgeRecord)) {
    throw std::invalid_argument("out_degrees: dataset is not an edge list");
  }
  std::vector<std::uint32_t> deg(pages, 0);
  for (std::size_t i = 0; i < edges.units(); ++i) {
    EdgeRecord e;
    std::memcpy(&e, edges.unit(i), sizeof e);
    if (e.src >= pages) throw std::out_of_range("out_degrees: edge source out of range");
    ++deg[e.src];
  }
  return deg;
}

engine::MemoryDataset generate_words(const WordGenSpec& spec) {
  if (spec.count == 0 || spec.vocabulary == 0) {
    throw std::invalid_argument("generate_words: count and vocabulary must be > 0");
  }
  std::vector<WordRecord> words(spec.count);
  Rng rng = Rng::substream(spec.seed, 0x30bd);
  for (auto& w : words) {
    w.word_id = rng.zipf(spec.vocabulary, spec.zipf_s);
  }
  return engine::MemoryDataset::from_records(words);
}

}  // namespace cloudburst::apps
