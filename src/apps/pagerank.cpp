#include "apps/pagerank.hpp"

#include <cstring>
#include <stdexcept>

#include "apps/datagen.hpp"
#include "engine/gr_engine.hpp"

namespace cloudburst::apps {

PageRankTask::PageRankTask(std::vector<double> ranks, std::vector<std::uint32_t> out_degree,
                           double damping)
    : ranks_(std::move(ranks)), out_degree_(std::move(out_degree)), damping_(damping) {
  if (ranks_.empty() || ranks_.size() != out_degree_.size()) {
    throw std::invalid_argument("PageRankTask: ranks and out_degree must match and be nonempty");
  }
  if (damping_ <= 0.0 || damping_ >= 1.0) {
    throw std::invalid_argument("PageRankTask: damping must be in (0, 1)");
  }
}

api::RobjPtr PageRankTask::create_robj() const { return api::make_vector_sum(pages()); }

void PageRankTask::process(const std::byte* data, std::size_t unit_count,
                           api::ReductionObject& robj) const {
  auto& mass = dynamic_cast<api::VectorFoldRobj&>(robj);
  for (std::size_t i = 0; i < unit_count; ++i) {
    EdgeRecord e;
    std::memcpy(&e, data + i * sizeof(EdgeRecord), sizeof e);
    if (e.src >= pages() || e.dst >= pages()) {
      throw std::out_of_range("pagerank: edge endpoint out of range");
    }
    mass.accumulate(e.dst, ranks_[e.src] / static_cast<double>(out_degree_[e.src]));
  }
}

void PageRankTask::finalize(api::ReductionObject& robj) const {
  auto& mass = dynamic_cast<api::VectorFoldRobj&>(robj);
  const double base = (1.0 - damping_) / static_cast<double>(pages());
  for (std::size_t p = 0; p < pages(); ++p) {
    mass.at(p) = base + damping_ * mass.at(p);
  }
}

void PageRankTask::map(const std::byte* data, std::size_t unit_count,
                       api::Emitter& emit) const {
  for (std::size_t i = 0; i < unit_count; ++i) {
    EdgeRecord e;
    std::memcpy(&e, data + i * sizeof(EdgeRecord), sizeof e);
    if (e.src >= pages() || e.dst >= pages()) {
      throw std::out_of_range("pagerank: edge endpoint out of range");
    }
    emit.emit(e.dst, {ranks_[e.src] / static_cast<double>(out_degree_[e.src])});
  }
}

void PageRankTask::reduce(std::uint64_t key, const std::vector<std::vector<double>>& values,
                          api::Emitter& emit) const {
  double acc = 0.0;
  for (const auto& v : values) {
    if (v.size() != 1) throw std::invalid_argument("pagerank reduce: malformed value");
    acc += v[0];
  }
  emit.emit(key, {acc});
}

std::vector<double> PageRankTask::ranks_from(const api::ReductionObject& robj) const {
  const auto& mass = dynamic_cast<const api::VectorFoldRobj&>(robj);
  return mass.values();
}

std::vector<double> PageRankTask::ranks_from(const std::vector<api::KeyValue>& out) const {
  const double base = (1.0 - damping_) / static_cast<double>(pages());
  std::vector<double> ranks(pages(), base);  // pages with no in-mass get the base rank
  for (const auto& kv : out) {
    if (kv.key >= pages()) throw std::out_of_range("pagerank output: page out of range");
    ranks[kv.key] = base + damping_ * kv.value.at(0);
  }
  return ranks;
}

std::vector<double> pagerank_iterate(const engine::MemoryDataset& edges,
                                     std::uint32_t pages, std::size_t iterations,
                                     std::size_t threads, double damping) {
  std::vector<double> ranks(pages, 1.0 / static_cast<double>(pages));
  const auto degrees = out_degrees(edges, pages);
  for (std::size_t it = 0; it < iterations; ++it) {
    PageRankTask task(ranks, degrees, damping);
    engine::GrEngineOptions options;
    options.threads = threads;
    const api::RobjPtr robj = engine::gr_run(task, edges, options);
    ranks = task.ranks_from(*robj);
  }
  return ranks;
}

}  // namespace cloudburst::apps
