// PageRank (evaluation application #3).
//
// One power iteration over the edge stream: each edge (s, d) moves
// rank[s]/outdeg[s] of rank mass to d. Low/medium computation, high I/O,
// and — the property the paper leans on — a *very large* reduction object
// (the full rank-mass vector), which makes the global reduction phase the
// dominant overhead in the hybrid configurations.
//
//  * Generalized Reduction: robj is a VectorSum over all pages; finalize
//    applies the damping update in place.
//  * Map-Reduce: map emits (dst, {mass}) per edge; reduce sums; finalize
//    applies damping (pages receiving no mass are filled in by the driver
//    helper `ranks_from`).
// The generator guarantees out-degree >= 1, so there is no dangling mass.
#pragma once

#include <memory>
#include <vector>

#include "api/combiners.hpp"
#include "api/generalized_reduction.hpp"
#include "api/mapreduce.hpp"
#include "apps/records.hpp"
#include "engine/memory_dataset.hpp"

namespace cloudburst::apps {

class PageRankTask final : public api::GRTask, public api::MRTask {
 public:
  PageRankTask(std::vector<double> ranks, std::vector<std::uint32_t> out_degree,
               double damping = 0.85);

  std::uint32_t pages() const { return static_cast<std::uint32_t>(ranks_.size()); }
  double damping() const { return damping_; }

  std::string name() const override { return "pagerank"; }
  std::size_t unit_bytes() const override { return sizeof(EdgeRecord); }

  // --- Generalized Reduction ------------------------------------------------
  api::RobjPtr create_robj() const override;
  void process(const std::byte* data, std::size_t unit_count,
               api::ReductionObject& robj) const override;
  void finalize(api::ReductionObject& robj) const override;

  // --- Map-Reduce -------------------------------------------------------------
  void map(const std::byte* data, std::size_t unit_count, api::Emitter& emit) const override;
  void reduce(std::uint64_t key, const std::vector<std::vector<double>>& values,
              api::Emitter& emit) const override;

  /// New rank vector from a finalized GR robj.
  std::vector<double> ranks_from(const api::ReductionObject& robj) const;
  /// New rank vector from (un-finalized mass) MR output pairs; applies the
  /// damping update including pages that received no mass.
  std::vector<double> ranks_from(const std::vector<api::KeyValue>& out) const;

 private:
  std::vector<double> ranks_;
  std::vector<std::uint32_t> out_degree_;
  double damping_;
};

/// Run `iterations` power iterations with the GR engine.
std::vector<double> pagerank_iterate(const engine::MemoryDataset& edges,
                                     std::uint32_t pages, std::size_t iterations,
                                     std::size_t threads, double damping = 0.85);

}  // namespace cloudburst::apps
