// Word count — the canonical Map-Reduce example; used by the quickstart and
// the API-comparison bench as an extra workload beyond the paper's three.
//
//  * Generalized Reduction: HashCountRobj incremented per word.
//  * Map-Reduce: map emits (word_id, {1}); combine/reduce sum.
#pragma once

#include "api/combiners.hpp"
#include "api/generalized_reduction.hpp"
#include "api/mapreduce.hpp"
#include "apps/records.hpp"

namespace cloudburst::apps {

class WordCountTask final : public api::GRTask, public api::MRTask {
 public:
  WordCountTask() = default;

  std::string name() const override { return "wordcount"; }
  std::size_t unit_bytes() const override { return sizeof(WordRecord); }

  // --- Generalized Reduction ------------------------------------------------
  api::RobjPtr create_robj() const override;
  void process(const std::byte* data, std::size_t unit_count,
               api::ReductionObject& robj) const override;

  // --- Map-Reduce -------------------------------------------------------------
  void map(const std::byte* data, std::size_t unit_count, api::Emitter& emit) const override;
  void reduce(std::uint64_t key, const std::vector<std::vector<double>>& values,
              api::Emitter& emit) const override;
};

}  // namespace cloudburst::apps
