// Paper experiment configurations (§IV).
//
// Encodes the evaluation setup exactly as reported:
//  * datasets: 12 GB per application, 32 files, 96 jobs (128 MB chunks);
//  * five environments for Figure 3 / Tables I-II:
//      env-local  — all data local,       (32, 0) cores
//      env-cloud  — all data in S3,       (0, 32) cores (kmeans: (0, 44))
//      env-50/50  — 50% local / 50% S3,   (16, 16) cores (kmeans: (16, 22))
//      env-33/67  — 33% local / 67% S3,   same split
//      env-17/83  — 17% local / 83% S3,   same split
//  * scalability (Figure 4): all data in S3, (m, n) cores with
//    m = n in {4, 8, 16, 32}.
// Application profiles are calibrated to the paper's characterization:
// knn low compute / small robj, kmeans heavy compute / small robj, pagerank
// medium compute / very large robj (see DESIGN.md for the calibration note).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "cluster/instance_types.hpp"
#include "cluster/platform.hpp"
#include "cost/cost_model.hpp"
#include "middleware/app_profile.hpp"
#include "middleware/run_context.hpp"
#include "middleware/run_result.hpp"
#include "storage/data_layout.hpp"

namespace cloudburst::apps {

enum class PaperApp { Knn, Kmeans, PageRank };

const char* to_string(PaperApp app);

/// Calibrated cost profile for the simulated distributed runs.
middleware::AppProfile paper_profile(PaperApp app);

enum class Env { Local, Cloud, Hybrid5050, Hybrid3367, Hybrid1783 };

constexpr Env kAllEnvs[] = {Env::Local, Env::Cloud, Env::Hybrid5050, Env::Hybrid3367,
                            Env::Hybrid1783};
constexpr Env kHybridEnvs[] = {Env::Hybrid5050, Env::Hybrid3367, Env::Hybrid1783};

struct EnvConfig {
  std::string name;            ///< "env-local", "env-33/67", ...
  double local_data_fraction;  ///< share of the 12 GB on the local store
  unsigned local_cores;
  unsigned cloud_cores;
};

/// Environment parameters; kmeans gets the paper's rebalanced cloud core
/// counts (44 / 22 instead of 32 / 16).
EnvConfig env_config(Env env, PaperApp app);

/// The 12 GB / 32 files / 96 jobs dataset layout with `local_fraction` of
/// the bytes on the local store (whole-file granularity, like the paper).
storage::DataLayout paper_layout(PaperApp app, double local_fraction,
                                 storage::StoreId local_store, storage::StoreId cloud_store);

/// Default run options for an app (profile + paper policies).
middleware::RunOptions paper_run_options(PaperApp app);

/// Run one Figure-3 environment end to end; `tweak` (optional) may adjust
/// the options before the run (ablation benches use this).
middleware::RunResult run_env(Env env, PaperApp app);
middleware::RunResult run_env(Env env, PaperApp app,
                              const std::function<void(cluster::PlatformSpec&,
                                                       middleware::RunOptions&)>& tweak);

/// Run one Figure-4 scalability point: all data in S3, (cores, cores).
middleware::RunResult run_scalability(PaperApp app, unsigned cores_per_side);
middleware::RunResult run_scalability(
    PaperApp app, unsigned cores_per_side,
    const std::function<void(cluster::PlatformSpec&, middleware::RunOptions&)>& tweak);

/// Fully custom provisioning run: arbitrary data split and core counts, with
/// the run priced under `pricing` (the cost planner's evaluation function).
struct CustomRun {
  middleware::RunResult result;
  cost::CostReport cost;
};
CustomRun run_custom(PaperApp app, double local_fraction, unsigned local_cores,
                     unsigned cloud_cores,
                     const cost::CloudPricing& pricing = cost::CloudPricing::aws_2011());

/// Like run_custom but with a typed cloud fleet: `count` instances of
/// `type`, billed at the type's hourly price.
CustomRun run_custom_typed(PaperApp app, double local_fraction, unsigned local_cores,
                           const cluster::InstanceType& type, unsigned count);

}  // namespace cloudburst::apps
