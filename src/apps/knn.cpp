#include "apps/knn.hpp"

#include <algorithm>
#include <stdexcept>

namespace cloudburst::apps {

KnnTask::KnnTask(std::size_t k, std::vector<float> query)
    : k_(k), query_(std::move(query)) {
  if (k_ == 0 || query_.empty()) {
    throw std::invalid_argument("KnnTask: k and query dimension must be > 0");
  }
}

double KnnTask::squared_distance(const std::byte* unit) const {
  const float* coords = point_coords(unit);
  double acc = 0.0;
  for (std::size_t d = 0; d < query_.size(); ++d) {
    const double diff = static_cast<double>(coords[d]) - static_cast<double>(query_[d]);
    acc += diff * diff;
  }
  return acc;
}

api::RobjPtr KnnTask::create_robj() const { return std::make_unique<api::TopKMinRobj>(k_); }

void KnnTask::process(const std::byte* data, std::size_t unit_count,
                      api::ReductionObject& robj) const {
  auto& top = dynamic_cast<api::TopKMinRobj&>(robj);
  const std::size_t stride = unit_bytes();
  for (std::size_t i = 0; i < unit_count; ++i) {
    const std::byte* unit = data + i * stride;
    top.offer(squared_distance(unit), point_id(unit));
  }
}

void KnnTask::map(const std::byte* data, std::size_t unit_count, api::Emitter& emit) const {
  const std::size_t stride = unit_bytes();
  for (std::size_t i = 0; i < unit_count; ++i) {
    const std::byte* unit = data + i * stride;
    emit.emit(0, {squared_distance(unit), static_cast<double>(point_id(unit))});
  }
}

void KnnTask::reduce(std::uint64_t key, const std::vector<std::vector<double>>& values,
                     api::Emitter& emit) const {
  // Fold all candidate (distance, id) pairs through a TopK accumulator and
  // re-emit the survivors; valid as a combiner too (associative, commutative).
  api::TopKMinRobj top(k_);
  for (const auto& v : values) {
    if (v.size() != 2) throw std::invalid_argument("knn reduce: malformed value");
    top.offer(v[0], static_cast<std::uint64_t>(v[1]));
  }
  for (const auto& e : top.sorted_entries()) {
    emit.emit(key, {e.score, static_cast<double>(e.id)});
  }
}

std::vector<api::TopKMinRobj::Entry> KnnTask::neighbors(const api::ReductionObject& robj) {
  return dynamic_cast<const api::TopKMinRobj&>(robj).sorted_entries();
}

std::vector<api::TopKMinRobj::Entry> KnnTask::neighbors(
    const std::vector<api::KeyValue>& out) {
  std::vector<api::TopKMinRobj::Entry> entries;
  entries.reserve(out.size());
  for (const auto& kv : out) {
    if (kv.value.size() != 2) throw std::invalid_argument("knn output: malformed value");
    entries.push_back({kv.value[0], static_cast<std::uint64_t>(kv.value[1])});
  }
  std::sort(entries.begin(), entries.end());
  return entries;
}

}  // namespace cloudburst::apps
