// k-Nearest-Neighbors search (evaluation application #1).
//
// The classic database/data-mining formulation the paper uses: stream every
// dataset point, keep the k points closest to a fixed query. Low computation
// per element, medium/high I/O demand, small reduction object.
//
// Both APIs are implemented on the same kernel:
//  * Generalized Reduction: TopKMinRobj updated per element — O(k) memory.
//  * Map-Reduce: map emits one (0, {distance, id}) pair per element; the
//    reducer (and optional combiner) keeps the k smallest. Without the
//    combiner the intermediate state is O(elements) — the overhead the
//    GR API is designed to avoid.
#pragma once

#include <vector>

#include "api/combiners.hpp"
#include "api/generalized_reduction.hpp"
#include "api/mapreduce.hpp"
#include "apps/records.hpp"

namespace cloudburst::apps {

class KnnTask final : public api::GRTask, public api::MRTask {
 public:
  KnnTask(std::size_t k, std::vector<float> query);

  std::size_t k() const { return k_; }
  std::size_t dim() const { return query_.size(); }

  // Shared by both APIs.
  std::string name() const override { return "knn"; }
  std::size_t unit_bytes() const override { return point_record_bytes(query_.size()); }

  // --- Generalized Reduction ------------------------------------------------
  api::RobjPtr create_robj() const override;
  void process(const std::byte* data, std::size_t unit_count,
               api::ReductionObject& robj) const override;

  // --- Map-Reduce -------------------------------------------------------------
  void map(const std::byte* data, std::size_t unit_count, api::Emitter& emit) const override;
  void reduce(std::uint64_t key, const std::vector<std::vector<double>>& values,
              api::Emitter& emit) const override;

  /// Neighbors (ascending distance) from a GR reduction object.
  static std::vector<api::TopKMinRobj::Entry> neighbors(const api::ReductionObject& robj);
  /// Neighbors (ascending distance) from Map-Reduce output pairs.
  static std::vector<api::TopKMinRobj::Entry> neighbors(const std::vector<api::KeyValue>& out);

 private:
  double squared_distance(const std::byte* unit) const;

  std::size_t k_;
  std::vector<float> query_;
};

}  // namespace cloudburst::apps
