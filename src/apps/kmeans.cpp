#include "apps/kmeans.hpp"

#include <limits>
#include <stdexcept>

#include "engine/gr_engine.hpp"

namespace cloudburst::apps {

KmeansTask::KmeansTask(std::vector<std::vector<float>> centroids)
    : centroids_(std::move(centroids)) {
  if (centroids_.empty() || centroids_.front().empty()) {
    throw std::invalid_argument("KmeansTask: need at least one centroid with dim > 0");
  }
  for (const auto& c : centroids_) {
    if (c.size() != centroids_.front().size()) {
      throw std::invalid_argument("KmeansTask: inconsistent centroid dimensions");
    }
  }
}

std::size_t KmeansTask::nearest_centroid(const float* coords) const {
  std::size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < centroids_.size(); ++c) {
    double acc = 0.0;
    for (std::size_t d = 0; d < dim(); ++d) {
      const double diff = static_cast<double>(coords[d]) - static_cast<double>(centroids_[c][d]);
      acc += diff * diff;
    }
    if (acc < best_dist) {
      best_dist = acc;
      best = c;
    }
  }
  return best;
}

api::RobjPtr KmeansTask::create_robj() const {
  // Layout: cluster c occupies slots [c*(dim+1), (c+1)*(dim+1)):
  // dim coordinate sums followed by the point count.
  return api::make_vector_sum(k() * (dim() + 1));
}

void KmeansTask::process(const std::byte* data, std::size_t unit_count,
                         api::ReductionObject& robj) const {
  auto& sums = dynamic_cast<api::VectorFoldRobj&>(robj);
  const std::size_t stride = unit_bytes();
  const std::size_t row = dim() + 1;
  for (std::size_t i = 0; i < unit_count; ++i) {
    const float* coords = point_coords(data + i * stride);
    const std::size_t c = nearest_centroid(coords);
    for (std::size_t d = 0; d < dim(); ++d) {
      sums.accumulate(c * row + d, coords[d]);
    }
    sums.accumulate(c * row + dim(), 1.0);
  }
}

void KmeansTask::finalize(api::ReductionObject& robj) const {
  auto& sums = dynamic_cast<api::VectorFoldRobj&>(robj);
  const std::size_t row = dim() + 1;
  for (std::size_t c = 0; c < k(); ++c) {
    const double count = sums.at(c * row + dim());
    if (count > 0.0) {
      for (std::size_t d = 0; d < dim(); ++d) sums.at(c * row + d) /= count;
    } else {
      // Empty cluster: keep the previous centroid.
      for (std::size_t d = 0; d < dim(); ++d) sums.at(c * row + d) = centroids_[c][d];
    }
  }
}

void KmeansTask::map(const std::byte* data, std::size_t unit_count,
                     api::Emitter& emit) const {
  const std::size_t stride = unit_bytes();
  std::vector<double> value(dim() + 1);
  for (std::size_t i = 0; i < unit_count; ++i) {
    const float* coords = point_coords(data + i * stride);
    const std::size_t c = nearest_centroid(coords);
    for (std::size_t d = 0; d < dim(); ++d) value[d] = coords[d];
    value[dim()] = 1.0;
    emit.emit(c, value);
  }
}

void KmeansTask::reduce(std::uint64_t key, const std::vector<std::vector<double>>& values,
                        api::Emitter& emit) const {
  std::vector<double> acc(dim() + 1, 0.0);
  for (const auto& v : values) {
    if (v.size() != acc.size()) throw std::invalid_argument("kmeans reduce: malformed value");
    for (std::size_t d = 0; d < acc.size(); ++d) acc[d] += v[d];
  }
  emit.emit(key, std::move(acc));
}

std::vector<api::KeyValue> KmeansTask::finalize(std::vector<api::KeyValue> reduced) const {
  for (auto& kv : reduced) {
    const double count = kv.value.back();
    if (count > 0.0) {
      for (std::size_t d = 0; d + 1 < kv.value.size(); ++d) kv.value[d] /= count;
    }
  }
  return reduced;
}

std::vector<std::vector<double>> KmeansTask::centroids_from(
    const api::ReductionObject& robj) const {
  const auto& sums = dynamic_cast<const api::VectorFoldRobj&>(robj);
  const std::size_t row = dim() + 1;
  std::vector<std::vector<double>> out(k(), std::vector<double>(dim()));
  for (std::size_t c = 0; c < k(); ++c) {
    for (std::size_t d = 0; d < dim(); ++d) out[c][d] = sums.at(c * row + d);
  }
  return out;
}

std::vector<std::vector<double>> KmeansTask::centroids_from(
    const std::vector<api::KeyValue>& out_pairs) const {
  std::vector<std::vector<double>> out(k(), std::vector<double>(dim()));
  // Clusters absent from the MR output were empty: keep the old centroid.
  for (std::size_t c = 0; c < k(); ++c) {
    for (std::size_t d = 0; d < dim(); ++d) out[c][d] = centroids_[c][d];
  }
  for (const auto& kv : out_pairs) {
    if (kv.key >= k()) throw std::out_of_range("kmeans output: cluster out of range");
    for (std::size_t d = 0; d < dim(); ++d) out[kv.key][d] = kv.value[d];
  }
  return out;
}

std::vector<std::vector<float>> kmeans_iterate(const engine::MemoryDataset& points,
                                               std::vector<std::vector<float>> centroids,
                                               std::size_t iterations, std::size_t threads) {
  for (std::size_t it = 0; it < iterations; ++it) {
    KmeansTask task(centroids);
    engine::GrEngineOptions options;
    options.threads = threads;
    const api::RobjPtr robj = engine::gr_run(task, points, options);
    const auto next = task.centroids_from(*robj);
    for (std::size_t c = 0; c < centroids.size(); ++c) {
      for (std::size_t d = 0; d < centroids[c].size(); ++d) {
        centroids[c][d] = static_cast<float>(next[c][d]);
      }
    }
  }
  return centroids;
}

}  // namespace cloudburst::apps
