// Synthetic dataset generators.
//
// The paper's 12 GB datasets are not public; these generators produce
// structurally equivalent inputs (see DESIGN.md): Gaussian-mixture points
// for knn/kmeans (so clustering has real structure), a Zipf-in-degree web
// graph with minimum out-degree 1 for pagerank (no dangling pages, matching
// the driver's damping treatment), and Zipf word streams for wordcount.
// Everything is deterministic from the seed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "apps/records.hpp"
#include "engine/memory_dataset.hpp"

namespace cloudburst::apps {

struct PointGenSpec {
  std::size_t count = 0;
  std::size_t dim = 8;
  std::size_t mixture_components = 8;  ///< Gaussian mixture modes
  double component_spread = 10.0;      ///< distance scale between modes
  double noise_sigma = 1.0;            ///< within-mode spread
  std::uint64_t seed = 1;
};

/// Id-bearing point records; ids are the element index.
engine::MemoryDataset generate_points(const PointGenSpec& spec);

/// The mixture-mode centers the generator used (ground truth for tests).
std::vector<std::vector<float>> mixture_centers(const PointGenSpec& spec);

struct GraphGenSpec {
  std::uint32_t pages = 0;
  std::uint64_t edges = 0;  ///< must be >= pages (min out-degree 1)
  double popularity_skew = 1.1;  ///< Zipf exponent for destination popularity
  std::uint64_t seed = 1;
};

/// Directed edges: every page gets one guaranteed out-edge, the rest go from
/// uniform sources to Zipf-popular destinations.
engine::MemoryDataset generate_edges(const GraphGenSpec& spec);

/// Out-degree per page for a generated edge set (pagerank needs it).
std::vector<std::uint32_t> out_degrees(const engine::MemoryDataset& edges,
                                       std::uint32_t pages);

struct WordGenSpec {
  std::size_t count = 0;
  std::uint64_t vocabulary = 10000;
  double zipf_s = 1.05;
  std::uint64_t seed = 1;
};

engine::MemoryDataset generate_words(const WordGenSpec& spec);

}  // namespace cloudburst::apps
