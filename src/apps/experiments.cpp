#include "apps/experiments.hpp"

#include <functional>
#include <stdexcept>

#include "apps/records.hpp"
#include "common/units.hpp"
#include "middleware/runtime.hpp"

namespace cloudburst::apps {

using namespace cloudburst::units;

const char* to_string(PaperApp app) {
  switch (app) {
    case PaperApp::Knn: return "knn";
    case PaperApp::Kmeans: return "kmeans";
    case PaperApp::PageRank: return "pagerank";
  }
  return "?";
}

middleware::AppProfile paper_profile(PaperApp app) {
  middleware::AppProfile p;
  p.name = to_string(app);
  switch (app) {
    case PaperApp::Knn:
      // Low computation, medium/high I/O, small reduction object (k=1000
      // neighbor entries).
      p.unit_bytes = point_record_bytes(8);
      p.bytes_per_second_per_core = MBps(60);
      p.robj_bytes = KiB(24);
      break;
    case PaperApp::Kmeans:
      // Heavy computation, low/medium I/O, small reduction object
      // (k centroids * (dim+1) doubles).
      p.unit_bytes = point_record_bytes(8);
      p.bytes_per_second_per_core = MBps(1.2);
      p.robj_bytes = KiB(8);
      break;
    case PaperApp::PageRank:
      // Low/medium computation, high I/O, very large reduction object (the
      // full rank-mass vector).
      p.unit_bytes = sizeof(EdgeRecord);
      p.bytes_per_second_per_core = MBps(40);
      p.robj_bytes = MiB(48);
      break;
  }
  return p;
}

EnvConfig env_config(Env env, PaperApp app) {
  // kmeans is compute-bound; the paper balanced throughput empirically with
  // 22 cloud cores per 16 local cores.
  const bool rebalance = app == PaperApp::Kmeans;
  switch (env) {
    case Env::Local: return {"env-local", 1.0, 32, 0};
    case Env::Cloud: return {"env-cloud", 0.0, 0, rebalance ? 44u : 32u};
    case Env::Hybrid5050: return {"env-50/50", 0.50, 16, rebalance ? 22u : 16u};
    case Env::Hybrid3367: return {"env-33/67", 1.0 / 3.0, 16, rebalance ? 22u : 16u};
    case Env::Hybrid1783: return {"env-17/83", 1.0 / 6.0, 16, rebalance ? 22u : 16u};
  }
  throw std::invalid_argument("unknown env");
}

storage::DataLayout paper_layout(PaperApp app, double local_fraction,
                                 storage::StoreId local_store,
                                 storage::StoreId cloud_store) {
  storage::LayoutSpec spec;
  spec.total_bytes = GiB(12);
  spec.num_files = 32;
  spec.chunks_per_file = 3;  // 96 jobs
  spec.unit_bytes = paper_profile(app).unit_bytes;
  spec.file_prefix = to_string(app);
  storage::DataLayout layout = storage::build_layout(spec);
  storage::assign_stores_by_fraction(layout, local_fraction, local_store, cloud_store);
  return layout;
}

middleware::RunOptions paper_run_options(PaperApp app) {
  middleware::RunOptions options;
  options.profile = paper_profile(app);
  options.policy = middleware::SchedulerPolicy{};  // paper defaults
  if (app == PaperApp::Kmeans) {
    // Compute-bound: a job costs roughly the same wherever it runs, so the
    // endgame steal reservation only creates idle time — disable it.
    options.policy.steal_reserve = 0;
  }
  options.retrieval_streams = 8;
  options.pipeline_depth = 1;
  return options;
}

middleware::RunResult run_env(Env env, PaperApp app) {
  return run_env(env, app, [](cluster::PlatformSpec&, middleware::RunOptions&) {});
}

middleware::RunResult run_env(
    Env env, PaperApp app,
    const std::function<void(cluster::PlatformSpec&, middleware::RunOptions&)>& tweak) {
  const EnvConfig config = env_config(env, app);
  cluster::PlatformSpec spec =
      cluster::PlatformSpec::paper_testbed(config.local_cores, config.cloud_cores);
  middleware::RunOptions options = paper_run_options(app);
  tweak(spec, options);

  cluster::Platform platform(spec);
  const storage::DataLayout layout = paper_layout(
      app, config.local_data_fraction, platform.local_store_id(), platform.cloud_store_id());
  return middleware::run_distributed(platform, layout, options);
}

middleware::RunResult run_scalability(PaperApp app, unsigned cores_per_side) {
  return run_scalability(app, cores_per_side,
                         [](cluster::PlatformSpec&, middleware::RunOptions&) {});
}

middleware::RunResult run_scalability(
    PaperApp app, unsigned cores_per_side,
    const std::function<void(cluster::PlatformSpec&, middleware::RunOptions&)>& tweak) {
  cluster::PlatformSpec spec =
      cluster::PlatformSpec::paper_testbed(cores_per_side, cores_per_side);
  middleware::RunOptions options = paper_run_options(app);
  tweak(spec, options);

  cluster::Platform platform(spec);
  // "We placed all data sets in S3."
  const storage::DataLayout layout =
      paper_layout(app, 0.0, platform.local_store_id(), platform.cloud_store_id());
  return middleware::run_distributed(platform, layout, options);
}

CustomRun run_custom(PaperApp app, double local_fraction, unsigned local_cores,
                     unsigned cloud_cores, const cost::CloudPricing& pricing) {
  const cluster::PlatformSpec spec =
      cluster::PlatformSpec::paper_testbed(local_cores, cloud_cores);
  const middleware::RunOptions options = paper_run_options(app);

  cluster::Platform platform(spec);
  const storage::DataLayout layout = paper_layout(
      app, local_fraction, platform.local_store_id(), platform.cloud_store_id());
  CustomRun out;
  out.result = middleware::run_distributed(platform, layout, options);
  out.cost = cost::price_run(out.result, platform, layout, options, pricing);
  return out;
}

CustomRun run_custom_typed(PaperApp app, double local_fraction, unsigned local_cores,
                           const cluster::InstanceType& type, unsigned count) {
  const cluster::PlatformSpec spec =
      cluster::paper_testbed_typed(local_cores, type, count);
  const middleware::RunOptions options = paper_run_options(app);

  cost::CloudPricing pricing = cost::CloudPricing::aws_2011();
  pricing.instance_hour_usd = type.hourly_usd;

  cluster::Platform platform(spec);
  const storage::DataLayout layout = paper_layout(
      app, local_fraction, platform.local_store_id(), platform.cloud_store_id());
  CustomRun out;
  out.result = middleware::run_distributed(platform, layout, options);
  out.cost = cost::price_run(out.result, platform, layout, options, pricing);
  return out;
}

}  // namespace cloudburst::apps
