// K-Means clustering (evaluation application #2).
//
// One Lloyd iteration over the point stream: assign each point to its
// nearest centroid and accumulate per-cluster coordinate sums and counts.
// Heavy computation (k distance evaluations per point), low/medium I/O,
// small reduction object — the paper's compute-bound workload.
//
//  * Generalized Reduction: robj is a VectorSum of k*(dim+1) slots
//    (per-cluster sums + count); finalize divides sums by counts so the
//    robj holds the new centroids.
//  * Map-Reduce: map emits (cluster, coords ++ [1]) per point; combine and
//    reduce sum elementwise; finalize divides.
#pragma once

#include <vector>

#include "api/combiners.hpp"
#include "api/generalized_reduction.hpp"
#include "api/mapreduce.hpp"
#include "apps/records.hpp"
#include "engine/memory_dataset.hpp"

namespace cloudburst::apps {

class KmeansTask final : public api::GRTask, public api::MRTask {
 public:
  /// `centroids` is k rows of `dim` floats (row-major).
  KmeansTask(std::vector<std::vector<float>> centroids);

  std::size_t k() const { return centroids_.size(); }
  std::size_t dim() const { return centroids_.front().size(); }

  std::string name() const override { return "kmeans"; }
  std::size_t unit_bytes() const override { return point_record_bytes(dim()); }

  // --- Generalized Reduction ------------------------------------------------
  api::RobjPtr create_robj() const override;
  void process(const std::byte* data, std::size_t unit_count,
               api::ReductionObject& robj) const override;
  void finalize(api::ReductionObject& robj) const override;

  // --- Map-Reduce -------------------------------------------------------------
  void map(const std::byte* data, std::size_t unit_count, api::Emitter& emit) const override;
  void reduce(std::uint64_t key, const std::vector<std::vector<double>>& values,
              api::Emitter& emit) const override;
  std::vector<api::KeyValue> finalize(std::vector<api::KeyValue> reduced) const override;

  /// New centroids from a finalized GR robj. Empty clusters keep their old
  /// centroid.
  std::vector<std::vector<double>> centroids_from(const api::ReductionObject& robj) const;
  /// New centroids from finalized MR output.
  std::vector<std::vector<double>> centroids_from(const std::vector<api::KeyValue>& out) const;

 private:
  std::size_t nearest_centroid(const float* coords) const;

  std::vector<std::vector<float>> centroids_;
};

/// Run `iterations` full Lloyd iterations with the GR engine; returns final
/// centroids. Convergence utility shared by tests and examples.
std::vector<std::vector<float>> kmeans_iterate(const engine::MemoryDataset& points,
                                               std::vector<std::vector<float>> centroids,
                                               std::size_t iterations, std::size_t threads);

}  // namespace cloudburst::apps
