#include "apps/wordcount.hpp"

#include <cstring>
#include <stdexcept>

namespace cloudburst::apps {

api::RobjPtr WordCountTask::create_robj() const {
  return std::make_unique<api::HashCountRobj>();
}

void WordCountTask::process(const std::byte* data, std::size_t unit_count,
                            api::ReductionObject& robj) const {
  auto& counts = dynamic_cast<api::HashCountRobj&>(robj);
  for (std::size_t i = 0; i < unit_count; ++i) {
    WordRecord w;
    std::memcpy(&w, data + i * sizeof(WordRecord), sizeof w);
    counts.add(w.word_id, 1.0);
  }
}

void WordCountTask::map(const std::byte* data, std::size_t unit_count,
                        api::Emitter& emit) const {
  for (std::size_t i = 0; i < unit_count; ++i) {
    WordRecord w;
    std::memcpy(&w, data + i * sizeof(WordRecord), sizeof w);
    emit.emit(w.word_id, {1.0});
  }
}

void WordCountTask::reduce(std::uint64_t key, const std::vector<std::vector<double>>& values,
                           api::Emitter& emit) const {
  double acc = 0.0;
  for (const auto& v : values) {
    if (v.size() != 1) throw std::invalid_argument("wordcount reduce: malformed value");
    acc += v[0];
  }
  emit.emit(key, {acc});
}

}  // namespace cloudburst::apps
