// On-disk/in-memory record layouts for the evaluation applications.
//
// Every application processes fixed-size atomic data units (paper §III-B):
//  * PointRecord<D>: an id-bearing D-dimensional float point (knn, kmeans),
//  * EdgeRecord: one directed graph edge (pagerank),
//  * WordRecord: one tokenized word id (wordcount).
// The point layout is runtime-dimensioned: a unit is 8 bytes of id followed
// by `dim` floats; helpers below read fields out of raw chunk bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace cloudburst::apps {

/// Unit size of an id + dim-float point record.
constexpr std::size_t point_record_bytes(std::size_t dim) {
  return sizeof(std::uint64_t) + dim * sizeof(float);
}

inline std::uint64_t point_id(const std::byte* unit) {
  std::uint64_t id;
  std::memcpy(&id, unit, sizeof id);
  return id;
}

/// Pointer to the coordinate array of a point record.
inline const float* point_coords(const std::byte* unit) {
  return reinterpret_cast<const float*>(unit + sizeof(std::uint64_t));
}

inline void write_point(std::byte* unit, std::uint64_t id, const float* coords,
                        std::size_t dim) {
  std::memcpy(unit, &id, sizeof id);
  std::memcpy(unit + sizeof id, coords, dim * sizeof(float));
}

struct EdgeRecord {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
};
static_assert(sizeof(EdgeRecord) == 8);

struct WordRecord {
  std::uint64_t word_id = 0;
};
static_assert(sizeof(WordRecord) == 8);

}  // namespace cloudburst::apps
