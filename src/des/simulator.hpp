// Discrete-event simulation kernel.
//
// A Simulator owns a priority queue of (time, sequence, callback) events.
// Ties on time break by insertion sequence, which makes every run fully
// deterministic. Events may be cancelled via the EventHandle returned at
// scheduling time (used by the network layer when fair-share rates change
// and flow completion times must be re-estimated).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "des/sim_time.hpp"

namespace cloudburst::des {

class Simulator;

/// Cancellation token for a scheduled event. Copyable; cancelling twice is a
/// no-op, as is cancelling an event that already fired.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevent the event from firing. Safe after the event has run.
  void cancel();

  /// True if the event has neither fired nor been cancelled.
  bool pending() const;

 private:
  friend class Simulator;
  explicit EventHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `fn` to run at now() + delay (delay >= 0).
  EventHandle schedule(SimDuration delay, std::function<void()> fn);

  /// Schedule at an absolute time >= now().
  EventHandle schedule_at(SimTime when, std::function<void()> fn);

  /// Run until the event queue drains. Returns the final simulated time.
  SimTime run();

  /// Run events with time <= deadline; the clock ends at
  /// min(deadline, last-event time). Returns the final simulated time.
  SimTime run_until(SimTime deadline);

  /// Execute at most one event. False if the queue was empty.
  bool step();

  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = kSimStart;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace cloudburst::des
