// Discrete-event simulation kernel.
//
// A Simulator owns a priority queue of (time, sequence, callback) events.
// Ties on time break by insertion sequence, which makes every run fully
// deterministic. Events may be cancelled via the EventHandle returned at
// scheduling time (used by the network layer when fair-share rates change
// and flow completion times must be re-estimated).
//
// Event storage & performance
// ---------------------------
// Event records live in a slab (a recycled vector of records addressed by
// slot index); the priority queue holds small POD entries pointing into the
// slab. Cancellation is lazy: the slab slot is recycled immediately (its
// generation counter is bumped, so stale queue entries and handles no
// longer match), but the queue entry stays behind and is skipped when
// popped. When dead entries outnumber live ones the queue is compacted in
// one pass. Callbacks are stored in an EventFn — a move-only callable with
// 48 bytes of inline capture storage — so scheduling an event performs no
// heap allocation on the hot paths. See DESIGN.md "Simulator internals &
// performance".
//
// Lifetime contract
// -----------------
// An EventHandle may outlive its Simulator: it holds a shared tag that the
// Simulator clears on destruction, after which pending() returns false and
// cancel() is a no-op. Handles are plain values — copy them freely; cancel
// after fire, double cancel, and cancel after the queue drained are all
// no-ops. What a handle never does is keep the Simulator (or the event's
// callback) alive.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "des/event_fn.hpp"
#include "des/sim_time.hpp"

namespace cloudburst::des {

class Simulator;

/// Cancellation token for a scheduled event. Copyable; cancelling twice is a
/// no-op, as is cancelling an event that already fired or whose Simulator is
/// gone (see the lifetime contract above).
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevent the event from firing. Safe after the event has run, and safe
  /// after the owning Simulator was destroyed.
  void cancel();

  /// True if the event has neither fired nor been cancelled. False once the
  /// owning Simulator has been destroyed.
  bool pending() const;

 private:
  friend class Simulator;
  EventHandle(std::shared_ptr<Simulator*> owner, std::uint32_t slot,
              std::uint32_t generation)
      : owner_(std::move(owner)), slot_(slot), generation_(generation) {}

  std::shared_ptr<Simulator*> owner_;  ///< pointee nulled by ~Simulator
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

class Simulator {
 public:
  Simulator() : self_(std::make_shared<Simulator*>(this)) {}
  ~Simulator() { *self_ = nullptr; }
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `fn` to run at now() + delay (delay >= 0).
  EventHandle schedule(SimDuration delay, EventFn fn);

  /// Schedule at an absolute time >= now().
  EventHandle schedule_at(SimTime when, EventFn fn);

  /// Run until the event queue drains. Returns the final simulated time.
  SimTime run();

  /// Run events with time <= deadline; the clock ends at
  /// min(deadline, last-event time). Returns the final simulated time.
  SimTime run_until(SimTime deadline);

  /// Execute at most one event. False if the queue was empty.
  bool step();

  /// Number of scheduled events that have neither fired nor been cancelled
  /// (live events only; lazily-deleted queue entries are not counted).
  std::size_t pending_events() const { return live_count_; }
  std::uint64_t executed_events() const { return executed_; }

 private:
  friend class EventHandle;

  /// One slab cell. `generation` advances every time the slot is released
  /// (fire or cancel), invalidating stale handles and queue entries.
  struct EventRecord {
    SimTime time = 0;
    std::uint64_t seq = 0;
    std::uint32_t generation = 0;
    bool live = false;
    EventFn fn;
  };

  /// Priority-queue entry: the (time, seq) ordering key plus the slab slot
  /// it refers to. `generation` detects entries whose event was cancelled
  /// (and whose slot possibly reused) after this entry was pushed.
  struct QueueEntry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;
  };
  struct Later {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  bool cancel(std::uint32_t slot, std::uint32_t generation);
  bool is_pending(std::uint32_t slot, std::uint32_t generation) const;
  /// Drop dead queue entries once they outnumber live ones.
  void maybe_compact();

  SimTime now_ = kSimStart;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_count_ = 0;
  std::size_t dead_in_queue_ = 0;

  std::vector<EventRecord> slab_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<QueueEntry> queue_;  ///< binary heap ordered by Later

  std::shared_ptr<Simulator*> self_;  ///< handles' liveness tag
};

}  // namespace cloudburst::des
