// Simulated time.
//
// Time is an integer count of nanoseconds since simulation start. Integer
// time makes event ordering total and platform-independent; conversions to
// and from double seconds happen only at the configuration and reporting
// boundaries.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>

namespace cloudburst::des {

/// Nanoseconds since simulation start.
using SimTime = std::int64_t;

/// A duration in simulated nanoseconds.
using SimDuration = std::int64_t;

constexpr SimTime kSimStart = 0;
constexpr SimDuration kNanosecond = 1;
constexpr SimDuration kMicrosecond = 1'000;
constexpr SimDuration kMillisecond = 1'000'000;
constexpr SimDuration kSecond = 1'000'000'000;

/// double seconds -> integer nanoseconds, rounded to nearest.
constexpr SimDuration from_seconds(double seconds) {
  return static_cast<SimDuration>(seconds * 1e9 + (seconds >= 0 ? 0.5 : -0.5));
}

/// integer nanoseconds -> double seconds.
constexpr double to_seconds(SimDuration d) { return static_cast<double>(d) * 1e-9; }

/// "123.456s" style rendering for logs.
std::string format(SimTime t);

}  // namespace cloudburst::des
