#include "des/simulator.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace cloudburst::des {

namespace {
/// Compact only when the dead entries amortize the rebuild: enough of them
/// in absolute terms, and more dead than live in the queue.
constexpr std::size_t kCompactMinDead = 64;
}  // namespace

std::string format(SimTime t) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6fs", to_seconds(t));
  return buf;
}

void EventHandle::cancel() {
  if (owner_ && *owner_ != nullptr) {
    (*owner_)->cancel(slot_, generation_);
  }
}

bool EventHandle::pending() const {
  return owner_ && *owner_ != nullptr && (*owner_)->is_pending(slot_, generation_);
}

EventHandle Simulator::schedule(SimDuration delay, EventFn fn) {
  if (delay < 0) throw std::invalid_argument("Simulator::schedule: negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Simulator::schedule_at(SimTime when, EventFn fn) {
  if (when < now_) throw std::invalid_argument("Simulator::schedule_at: time in the past");
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.emplace_back();
  }
  EventRecord& rec = slab_[slot];
  rec.time = when;
  rec.seq = next_seq_++;
  rec.live = true;
  rec.fn = std::move(fn);
  queue_.push_back(QueueEntry{rec.time, rec.seq, slot, rec.generation});
  std::push_heap(queue_.begin(), queue_.end(), Later{});
  ++live_count_;
  return EventHandle(self_, slot, rec.generation);
}

bool Simulator::cancel(std::uint32_t slot, std::uint32_t generation) {
  if (slot >= slab_.size()) return false;
  EventRecord& rec = slab_[slot];
  if (rec.generation != generation || !rec.live) return false;
  rec.live = false;
  rec.fn.reset();  // release captures now, not when the entry is popped
  ++rec.generation;
  free_slots_.push_back(slot);
  --live_count_;
  ++dead_in_queue_;
  maybe_compact();
  return true;
}

bool Simulator::is_pending(std::uint32_t slot, std::uint32_t generation) const {
  return slot < slab_.size() && slab_[slot].generation == generation &&
         slab_[slot].live;
}

void Simulator::maybe_compact() {
  if (dead_in_queue_ < kCompactMinDead || dead_in_queue_ * 2 <= queue_.size()) {
    return;
  }
  queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                              [this](const QueueEntry& e) {
                                return slab_[e.slot].generation != e.generation;
                              }),
               queue_.end());
  std::make_heap(queue_.begin(), queue_.end(), Later{});
  dead_in_queue_ = 0;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    const QueueEntry top = queue_.front();
    std::pop_heap(queue_.begin(), queue_.end(), Later{});
    queue_.pop_back();
    EventRecord& rec = slab_[top.slot];
    if (rec.generation != top.generation) {
      // Cancelled (slot possibly reused since): lazy deletion.
      --dead_in_queue_;
      continue;
    }
    // Release the slot before running: handles report !pending() during the
    // callback, and the callback may itself schedule into this slot.
    EventFn fn = std::move(rec.fn);
    rec.live = false;
    ++rec.generation;
    free_slots_.push_back(top.slot);
    --live_count_;
    now_ = top.time;
    ++executed_;
    if (fn) fn();
    return true;
  }
  return false;
}

SimTime Simulator::run() {
  while (step()) {
  }
  return now_;
}

SimTime Simulator::run_until(SimTime deadline) {
  while (!queue_.empty()) {
    // Skip cancelled entries without advancing the clock.
    const QueueEntry& top = queue_.front();
    if (slab_[top.slot].generation != top.generation) {
      std::pop_heap(queue_.begin(), queue_.end(), Later{});
      queue_.pop_back();
      --dead_in_queue_;
      continue;
    }
    if (top.time > deadline) break;
    step();
  }
  if (now_ < deadline && queue_.empty()) {
    // Queue drained before the deadline: clock stays at the last event.
    return now_;
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace cloudburst::des
