#include "des/simulator.hpp"

#include <cstdio>
#include <stdexcept>

namespace cloudburst::des {

std::string format(SimTime t) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6fs", to_seconds(t));
  return buf;
}

void EventHandle::cancel() {
  if (alive_) *alive_ = false;
}

bool EventHandle::pending() const { return alive_ && *alive_; }

EventHandle Simulator::schedule(SimDuration delay, std::function<void()> fn) {
  if (delay < 0) throw std::invalid_argument("Simulator::schedule: negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Simulator::schedule_at(SimTime when, std::function<void()> fn) {
  if (when < now_) throw std::invalid_argument("Simulator::schedule_at: time in the past");
  auto alive = std::make_shared<bool>(true);
  queue_.push(Event{when, next_seq_++, std::move(fn), alive});
  return EventHandle(std::move(alive));
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (!*ev.alive) continue;  // cancelled
    *ev.alive = false;         // mark fired so handles report !pending()
    now_ = ev.time;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

SimTime Simulator::run() {
  while (step()) {
  }
  return now_;
}

SimTime Simulator::run_until(SimTime deadline) {
  while (!queue_.empty()) {
    // Skip cancelled events without advancing the clock.
    if (!*queue_.top().alive) {
      queue_.pop();
      continue;
    }
    if (queue_.top().time > deadline) break;
    step();
  }
  if (now_ < deadline && queue_.empty()) {
    // Queue drained before the deadline: clock stays at the last event.
    return now_;
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace cloudburst::des
