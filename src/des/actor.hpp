// Actor base for simulated system components.
//
// Head, master, and slave nodes (and the storage services) are actors: named
// entities bound to a Simulator that exchange messages through the network
// layer. The base class only carries identity and scheduling convenience;
// message delivery is defined by net::Network to keep the DES kernel free of
// topology concerns.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "des/simulator.hpp"

namespace cloudburst::des {

/// Opaque identifier for an actor / network endpoint.
using ActorId = std::uint32_t;
constexpr ActorId kInvalidActor = static_cast<ActorId>(-1);

class Actor {
 public:
  Actor(Simulator& sim, ActorId id, std::string name)
      : sim_(sim), id_(id), name_(std::move(name)) {}
  virtual ~Actor() = default;

  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  ActorId id() const { return id_; }
  const std::string& name() const { return name_; }
  Simulator& sim() { return sim_; }
  SimTime now() const { return sim_.now(); }

 protected:
  EventHandle after(SimDuration delay, std::function<void()> fn) {
    return sim_.schedule(delay, std::move(fn));
  }

 private:
  Simulator& sim_;
  ActorId id_;
  std::string name_;
};

}  // namespace cloudburst::des
