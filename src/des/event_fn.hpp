// Small-buffer-optimized move-only callable for simulator events.
//
// std::function heap-allocates any capture larger than two pointers and
// requires copyability; almost every event callback in the system is a
// move-only lambda capturing a handful of ids (and occasionally a whole
// message payload). EventFn stores captures up to kInlineBytes in place —
// large enough for every hot-path callback — and falls back to a single
// heap cell beyond that. Profiling the canonical fleet workload showed the
// per-event std::function allocation (plus the shared_ptr liveness flag it
// rode with) as the kernel's top allocation site; this type removes both.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace cloudburst::des {

class EventFn {
 public:
  /// Inline capture budget. Six pointers: fits [this + a few ids + a small
  /// struct]; measured to cover the des/net/middleware hot paths.
  static constexpr std::size_t kInlineBytes = 48;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& fn) {  // NOLINT(google-explicit-constructor): callable adapter
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (storage_) Fn(std::forward<F>(fn));
      ops_ = &kInlineOps<Fn>;
    } else {
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(fn));
      ops_ = &kHeapOps<Fn>;
    }
  }

  /// nullptr converts to an empty EventFn (callers pass `nullptr` for "no
  /// callback", matching the std::function convention).
  EventFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  EventFn(EventFn&& other) noexcept { move_from(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-construct into dst from src, destroying src's value.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); },
      [](void* dst, void* src) {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* p) { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); }};

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* p) { (**reinterpret_cast<Fn**>(p))(); },
      [](void* dst, void* src) {
        *reinterpret_cast<Fn**>(dst) = *reinterpret_cast<Fn**>(src);
      },
      [](void* p) { delete *reinterpret_cast<Fn**>(p); }};

  void move_from(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
};

}  // namespace cloudburst::des
