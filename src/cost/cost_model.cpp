#include "cost/cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace cloudburst::cost {

std::string CostReport::to_string() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "compute $%.3f (%.1f inst-h) + requests $%.3f (%llu GETs) + "
                "transfer $%.3f (%.2f GB out) + storage $%.4f = $%.3f",
                instance_usd, instance_hours, requests_usd,
                static_cast<unsigned long long>(get_requests), transfer_usd,
                transfer_out_gb, storage_usd, total_usd());
  return buf;
}

CostReport price(const CostInputs& inputs, const CloudPricing& pricing) {
  CostReport report;

  // Per-started-quantum billing: every instance pays ceil(duration) quanta
  // (whole hours at the default quantum — the 2011 rules — or finer windows
  // under lease-granular pricing).
  const double quantum = pricing.billing_quantum_hours > 0.0
                             ? pricing.billing_quantum_hours
                             : 1.0;
  if (!inputs.instance_seconds.empty()) {
    report.instance_hours = 0.0;
    for (double s : inputs.instance_seconds) {
      // Launching bills the first quantum even if the job finished before
      // the instance came up (cancel-at-boot still pays).
      report.instance_hours +=
          std::max(quantum, std::ceil(s / 3600.0 / quantum) * quantum);
    }
  } else {
    const double hours = inputs.run_seconds / 3600.0;
    report.instance_hours =
        std::ceil(hours / quantum) * quantum * static_cast<double>(inputs.cloud_instances);
  }
  report.instance_usd = report.instance_hours * pricing.instance_hour_usd;

  report.get_requests = inputs.s3_get_requests;
  report.requests_usd =
      static_cast<double>(inputs.s3_get_requests) / 1000.0 * pricing.get_per_1000_usd;

  report.transfer_out_gb = static_cast<double>(inputs.bytes_out_of_cloud) / 1e9;
  report.transfer_usd = report.transfer_out_gb * pricing.transfer_out_per_gb_usd;

  report.storage_gb = static_cast<double>(inputs.s3_resident_bytes) / 1e9;
  const double months = inputs.run_seconds / (30.0 * 24.0 * 3600.0);
  report.storage_usd = report.storage_gb * months * pricing.storage_gb_month_usd;
  return report;
}

CostInputs derive_run_inputs(const middleware::RunResult& result,
                             cluster::Platform& platform,
                             const storage::DataLayout& layout,
                             const middleware::RunOptions& options) {
  CostInputs inputs;
  inputs.run_seconds = result.total_time;
  inputs.cloud_instances =
      static_cast<std::uint32_t>(result.cloud_instance_starts.size());
  for (std::size_t i = 0; i < result.cloud_instance_starts.size(); ++i) {
    const double start = result.cloud_instance_starts[i];
    // A reclaimed or drained instance stops billing when its rental ended
    // (cloud_instance_ends; negative = rented to the end of the run).
    double until = result.total_time;
    if (i < result.cloud_instance_ends.size() &&
        result.cloud_instance_ends[i] >= 0.0) {
      until = std::min(until, result.cloud_instance_ends[i]);
    }
    inputs.instance_seconds.push_back(std::max(0.0, until - start));
  }

  // Billable stores: the ones owned by cloud-billed sites. Every chunk fetch
  // from one issues `retrieval_streams` range GETs.
  const double ratio = std::max(1.0, options.profile.compression_ratio);
  for (storage::StoreId s = 0; s < platform.store_count(); ++s) {
    if (!platform.is_cloud(platform.owner_of_store(s))) continue;
    // The result's own request counts: identical to the store's global
    // stats() for a solo run, but under a multi-job workload they are this
    // job's share (the store counter aggregates every tenant). Hand-built
    // results without the vector fall back to the store.
    const std::uint64_t requests = s < result.store_requests.size()
                                       ? result.store_requests[s]
                                       : platform.store(s).stats().requests;
    inputs.s3_get_requests += requests * std::max(1u, options.retrieval_streams);
    inputs.s3_resident_bytes += layout.bytes_on(s);
    // Replication: live extra copies on a cloud store are resident bytes the
    // provider bills just like the primaries.
    if (s < result.replica.extra_replica_bytes.size()) {
      inputs.s3_resident_bytes += result.replica.extra_replica_bytes[s];
    }
    // Transfer out of the provider: chunks any *other* site pulled from this
    // store cross its egress boundary. Stored chunks move compressed.
    const cluster::ClusterId owner = platform.owner_of_store(s);
    for (cluster::ClusterId c = 0; c < platform.cluster_count(); ++c) {
      if (c == owner) continue;
      if (c < result.bytes_from_store.size() && s < result.bytes_from_store[c].size()) {
        // Site caches: bytes served locally were charged to the store at
        // assignment time but never crossed the egress boundary — credit
        // them back before pricing. (GET savings need no credit: a cache hit
        // never reaches the store, so stats().requests already excludes it.)
        std::uint64_t bytes = result.bytes_from_store[c][s];
        if (c < result.bytes_from_cache.size() &&
            s < result.bytes_from_cache[c].size()) {
          bytes -= std::min(bytes, result.bytes_from_cache[c][s]);
        }
        inputs.bytes_out_of_cloud +=
            static_cast<std::uint64_t>(static_cast<double>(bytes) / ratio);
      }
      if (c < result.bytes_retried.size() && s < result.bytes_retried[c].size()) {
        // Retried bytes are already wire bytes (post-compression) and every
        // one of them crossed the egress boundary — failed partial GETs,
        // hedge losers, and post-timeout arrivals are billed, not refunded.
        inputs.bytes_out_of_cloud += result.bytes_retried[c][s];
      }
    }
  }
  // Each cloud cluster ships its reduction object to the head across the WAN.
  for (cluster::ClusterId c = 0; c < platform.cluster_count(); ++c) {
    if (c == cluster::kLocalSite || !platform.is_cloud(c)) continue;
    if (c < result.clusters.size() && result.clusters[c].nodes > 0) {
      inputs.bytes_out_of_cloud += options.profile.robj_bytes;
    }
  }
  return inputs;
}

CostReport price_run(const middleware::RunResult& result, cluster::Platform& platform,
                     const storage::DataLayout& layout,
                     const middleware::RunOptions& options, const CloudPricing& pricing) {
  return price(derive_run_inputs(result, platform, layout, options), pricing);
}

}  // namespace cloudburst::cost
