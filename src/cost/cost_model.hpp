// Pricing a distributed run.
//
// Consumes the run result plus platform/store statistics and produces an
// itemized CostReport:
//  * compute — cloud instances × ceil(run duration in hours), per 2011 EC2
//    per-started-hour billing;
//  * requests — S3 range GETs (each chunk fetch issues `streams` GETs);
//  * transfer out — bytes that left the provider: chunks the local cluster
//    stole from S3 plus the cloud master's reduction object crossing the
//    WAN to the head;
//  * storage — the S3-resident dataset fraction, prorated to the run.
#pragma once

#include <vector>

#include "cluster/platform.hpp"
#include "cost/pricing.hpp"
#include "middleware/run_context.hpp"
#include "middleware/run_result.hpp"
#include "storage/data_layout.hpp"

namespace cloudburst::cost {

struct CostInputs {
  double run_seconds = 0.0;
  std::uint32_t cloud_instances = 0;
  /// Per-instance rented durations (elastic runs bill from activation).
  /// When non-empty this overrides `cloud_instances` x run_seconds.
  std::vector<double> instance_seconds;
  std::uint64_t s3_get_requests = 0;
  std::uint64_t bytes_out_of_cloud = 0;  ///< transfer-out volume
  std::uint64_t s3_resident_bytes = 0;   ///< dataset bytes stored in S3
};

/// Price raw usage numbers.
CostReport price(const CostInputs& inputs, const CloudPricing& pricing);

/// Derive raw usage numbers from a finished run — the un-priced half of
/// price_run. A workload manager combines several jobs' inputs (deduping
/// physically shared instances) before pricing the whole platform.
CostInputs derive_run_inputs(const middleware::RunResult& result,
                             cluster::Platform& platform,
                             const storage::DataLayout& layout,
                             const middleware::RunOptions& options);

/// Derive usage from a finished run on `platform` with `layout` and price it.
/// `options` supplies the retrieval stream count (GETs per fetch) and the
/// robj size (WAN transfer-out during the global reduction).
CostReport price_run(const middleware::RunResult& result, cluster::Platform& platform,
                     const storage::DataLayout& layout,
                     const middleware::RunOptions& options, const CloudPricing& pricing);

}  // namespace cloudburst::cost
