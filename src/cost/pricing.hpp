// Pay-as-you-go cloud pricing model.
//
// The paper's conclusion motivates cloud bursting as "combining limited
// local resources with pay-as-you-go cloud resources"; the authors' own
// follow-up work (Bicer et al., "Time and Cost Sensitive Data-Intensive
// Computing on Hybrid Clouds") makes the dollar cost a first-class
// objective. This module prices a simulated run with the 2011-era AWS
// billing rules: per-started-instance-hour compute, per-request S3 GETs,
// and per-GB data transfer *out* of the provider (inbound was free).
#pragma once

#include <cstdint>
#include <string>

namespace cloudburst::cost {

struct CloudPricing {
  /// USD per instance-hour, billed per *started* hour (EC2 2011 rules).
  double instance_hour_usd = 0.34;  // m1.large, us-east, 2011

  /// USD per 1,000 GET requests against the object store.
  double get_per_1000_usd = 0.01;

  /// USD per GB transferred out of the cloud provider to the internet.
  double transfer_out_per_gb_usd = 0.12;

  /// USD per GB-month of object storage (charged for the dataset fraction
  /// hosted in the cloud, prorated to the run duration).
  double storage_gb_month_usd = 0.14;

  /// Billing granularity in hours. 1.0 reproduces the 2011 per-started-hour
  /// rules exactly; smaller values model lease-granular billing (per-minute
  /// at 1/60.0), where a node-pool lease pays for the time it actually held
  /// the instance instead of rounding every window up to a full hour.
  double billing_quantum_hours = 1.0;

  static CloudPricing aws_2011() { return CloudPricing{}; }

  /// 2011 rates with per-minute billing quanta — the pricing a shared node
  /// pool's lease windows are metered under.
  static CloudPricing aws_2011_per_minute() {
    CloudPricing p;
    p.billing_quantum_hours = 1.0 / 60.0;
    return p;
  }
};

/// Itemized cost of one distributed run.
struct CostReport {
  double instance_hours = 0.0;  ///< billed (rounded-up) instance hours
  double instance_usd = 0.0;
  std::uint64_t get_requests = 0;
  double requests_usd = 0.0;
  double transfer_out_gb = 0.0;
  double transfer_usd = 0.0;
  double storage_gb = 0.0;
  double storage_usd = 0.0;

  double total_usd() const {
    return instance_usd + requests_usd + transfer_usd + storage_usd;
  }

  std::string to_string() const;
};

}  // namespace cloudburst::cost
