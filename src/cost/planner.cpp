#include "cost/planner.hpp"

#include <limits>

namespace cloudburst::cost {

std::vector<PlanPoint> sweep(const PlannerConfig& config, const RunFn& run) {
  std::vector<PlanPoint> points;
  for (unsigned cores = 0; cores <= config.max_cloud_cores; cores += config.core_step) {
    points.push_back(run(cores));
    if (config.core_step == 0) break;  // degenerate config: single point
  }
  return points;
}

std::optional<PlanPoint> plan_for_deadline(const std::vector<PlanPoint>& points,
                                           double deadline_seconds) {
  std::optional<PlanPoint> best;
  for (const auto& p : points) {
    if (p.exec_seconds > deadline_seconds) continue;
    if (!best || p.cost.total_usd() < best->cost.total_usd()) best = p;
  }
  return best;
}

std::optional<PlanPoint> plan_for_budget(const std::vector<PlanPoint>& points,
                                         double budget_usd) {
  std::optional<PlanPoint> best;
  for (const auto& p : points) {
    if (p.cost.total_usd() > budget_usd) continue;
    if (!best || p.exec_seconds < best->exec_seconds) best = p;
  }
  return best;
}

}  // namespace cloudburst::cost
