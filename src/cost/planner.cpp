#include "cost/planner.hpp"

#include <limits>

namespace cloudburst::cost {

std::vector<PlanPoint> sweep(const PlannerConfig& config, const RunFn& run) {
  std::vector<PlanPoint> points;
  for (unsigned cores = 0; cores <= config.max_cloud_cores; cores += config.core_step) {
    points.push_back(run(cores));
    if (config.core_step == 0) break;  // degenerate config: single point
  }
  return points;
}

std::optional<PlanPoint> plan_for_deadline(const std::vector<PlanPoint>& points,
                                           double deadline_seconds) {
  std::optional<PlanPoint> best;
  for (const auto& p : points) {
    if (p.exec_seconds > deadline_seconds) continue;
    if (!best || p.cost.total_usd() < best->cost.total_usd()) best = p;
  }
  return best;
}

std::optional<PlanPoint> plan_for_budget(const std::vector<PlanPoint>& points,
                                         double budget_usd) {
  std::optional<PlanPoint> best;
  for (const auto& p : points) {
    if (p.cost.total_usd() > budget_usd) continue;
    if (!best || p.exec_seconds < best->exec_seconds) best = p;
  }
  return best;
}

double estimate_exec_seconds(const cluster::Platform& platform,
                             const storage::DataLayout& layout,
                             const middleware::RunOptions& options) {
  const middleware::AppProfile& profile = options.profile;
  double core_capacity = 0.0;  // sum of core_speed * cores over all nodes
  std::size_t node_count = 0;
  for (cluster::ClusterId site = 0; site < platform.cluster_count(); ++site) {
    for (const auto& node : platform.nodes(site)) {
      core_capacity += node.core_speed * static_cast<double>(node.cores);
      ++node_count;
    }
  }
  if (node_count == 0 || core_capacity <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }

  std::uint64_t total_bytes = 0;
  for (const auto& chunk : layout.chunks()) total_bytes += chunk.bytes;
  const auto chunks = static_cast<double>(layout.chunks().size());

  double seconds = 0.0;
  if (profile.bytes_per_second_per_core > 0.0) {
    seconds += static_cast<double>(total_bytes) /
               (profile.bytes_per_second_per_core * core_capacity);
  }
  if (profile.compression_ratio > 1.0 &&
      profile.decompress_bytes_per_second_per_core > 0.0) {
    seconds += static_cast<double>(total_bytes) /
               (profile.decompress_bytes_per_second_per_core * core_capacity);
  }
  seconds += chunks * profile.per_job_overhead_seconds / static_cast<double>(node_count);
  // Reduction tail: every node's robj is merged somewhere on the way up.
  if (profile.merge_bytes_per_second > 0.0 && profile.robj_bytes > 0) {
    seconds += static_cast<double>(node_count) *
               static_cast<double>(profile.robj_bytes) / profile.merge_bytes_per_second;
  }
  return seconds;
}

}  // namespace cloudburst::cost
