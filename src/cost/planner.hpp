// Time/cost-constrained provisioning planner.
//
// Answers the operational questions cloud bursting raises: *how many cloud
// instances should I rent?*
//  * plan_for_deadline — cheapest cloud core count whose simulated execution
//    time meets a deadline;
//  * plan_for_budget  — fastest cloud core count whose dollar cost stays
//    within budget.
// Both sweep candidate allocations through the full simulator, so every
// effect the middleware models (stealing, WAN contention, robj sync, job
// granularity) is reflected in the plan.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "cost/cost_model.hpp"
#include "middleware/run_result.hpp"

namespace cloudburst::cost {

struct PlanPoint {
  unsigned cloud_cores = 0;
  double exec_seconds = 0.0;
  CostReport cost;
};

struct PlannerConfig {
  unsigned local_cores = 16;        ///< fixed in-house capacity
  double local_data_fraction = 0.5; ///< dataset split
  unsigned max_cloud_cores = 64;
  unsigned core_step = 4;           ///< sweep granularity (m1.large = 2 cores)
  CloudPricing pricing = CloudPricing::aws_2011();
};

/// One simulated run per candidate allocation; `run` must execute the
/// workload on a platform with (local_cores, cloud_cores) and report the
/// result (apps::run_env-style helpers satisfy this).
using RunFn = std::function<PlanPoint(unsigned cloud_cores)>;

/// Evaluate the whole sweep (cloud_cores = 0, step, 2*step, ...).
std::vector<PlanPoint> sweep(const PlannerConfig& config, const RunFn& run);

/// Cheapest point meeting `deadline_seconds`; nullopt if none does.
std::optional<PlanPoint> plan_for_deadline(const std::vector<PlanPoint>& points,
                                           double deadline_seconds);

/// Fastest point with cost <= `budget_usd`; nullopt if none qualifies.
std::optional<PlanPoint> plan_for_budget(const std::vector<PlanPoint>& points,
                                         double budget_usd);

/// Coarse analytic estimate of one job's execution time on `platform`:
/// aggregate compute throughput over all nodes plus per-chunk overheads and
/// the reduction-object merge chain. Deliberately cheap — no nested
/// simulation — so a workload manager can rank queued jobs (SJF) inside a
/// running DES. Ranking fidelity matters here, not absolute accuracy.
double estimate_exec_seconds(const cluster::Platform& platform,
                             const storage::DataLayout& layout,
                             const middleware::RunOptions& options);

}  // namespace cloudburst::cost
