// ObjectStore: an S3-style cloud object store.
//
// Two properties of S3 matter to the paper's system and are modeled here:
//  1. each GET pays a per-request latency and is throughput-capped per
//     connection — a single stream cannot saturate the path;
//  2. aggregate throughput is high, so *multi-threaded retrieval* (several
//     concurrent range GETs per chunk) recovers the bandwidth; the paper's
//     slaves do exactly this.
// Aggregate capacity is bounded by the store's access link in the platform
// topology, so many concurrent clients still contend.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "des/simulator.hpp"
#include "storage/fault.hpp"
#include "storage/store_service.hpp"

namespace cloudburst::storage {

class ObjectStore final : public StoreService {
 public:
  struct Params {
    des::SimDuration request_latency = 0;  ///< first-byte latency per GET
    double per_connection_bandwidth = 0.0; ///< bytes/sec cap per stream (0 = uncapped)
    /// Transient-fault model; a default-constructed profile is disabled and
    /// the store draws no random numbers (fault-free runs stay byte-exact).
    FaultProfile fault;
  };

  ObjectStore(StoreId id, des::Simulator& sim, net::Network& net, net::EndpointId ep,
              Params params)
      : id_(id), sim_(sim), net_(net), endpoint_(ep), params_(std::move(params)),
        rng_(Rng::substream(params_.fault.seed, id)) {}

  void fetch(net::EndpointId dst, const ChunkInfo& chunk, unsigned streams,
             FetchCallback on_complete) override;

  void set_offline(bool offline) override;
  bool offline() const override { return offline_; }

  net::EndpointId endpoint() const override { return endpoint_; }
  const Stats& stats() const override { return stats_; }
  StoreId id() const override { return id_; }

 private:
  /// One in-flight request: its range-GET flows plus abort bookkeeping.
  struct Pending {
    std::uint64_t req_id = 0;
    unsigned remaining = 0;  ///< range GETs still in flight
    FetchCallback cb;
    FetchResult result;
    std::vector<net::FlowId> flows;   ///< flows started so far
    double unstarted_bytes = 0.0;     ///< parts still in the request-latency phase
    bool aborted = false;
  };

  StoreId id_;
  des::Simulator& sim_;
  net::Network& net_;
  net::EndpointId endpoint_;
  Params params_;
  Stats stats_;
  Rng rng_;  ///< fault-model draws only; untouched while the profile is off
  bool offline_ = false;
  std::uint64_t next_req_id_ = 0;
  /// In-flight requests by id (id order == request order => deterministic
  /// abort order on set_offline).
  std::map<std::uint64_t, std::shared_ptr<Pending>> inflight_;
};

}  // namespace cloudburst::storage
