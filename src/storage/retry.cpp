#include "storage/retry.hpp"

#include <algorithm>
#include <memory>
#include <utility>

namespace cloudburst::storage {

double RetryPolicy::backoff_before(unsigned attempt, Rng& rng) const {
  double delay = backoff_base_seconds;
  for (unsigned k = 2; k < attempt; ++k) delay *= backoff_multiplier;
  delay = std::min(delay, backoff_max_seconds);
  if (jitter_fraction > 0.0) {
    delay *= rng.uniform(1.0 - jitter_fraction, 1.0 + jitter_fraction);
  }
  return std::max(0.0, delay);
}

namespace {

/// One retrying fetch operation. Requests that complete after their attempt
/// settled (timeout fired, or the other hedge leg won) are ignored for
/// control flow but their bytes are reported via on_wasted — they moved.
struct RetryOp : std::enable_shared_from_this<RetryOp> {
  des::Simulator& sim;
  StoreService& store;
  net::EndpointId dst;
  ChunkInfo chunk;
  unsigned streams;
  RetryPolicy policy;
  RetryHooks hooks;
  FetchCallback done;
  Rng rng;

  unsigned attempt = 0;
  /// Settlement state of the current attempt; shared with its request
  /// callbacks so a stale attempt's arrivals can tell they are late.
  struct Attempt {
    bool settled = false;
    unsigned outstanding = 0;
    bool hedged = false;
    FetchResult last_failure;
  };
  std::shared_ptr<Attempt> cur;

  RetryOp(des::Simulator& sim_, StoreService& store_, net::EndpointId dst_,
          const ChunkInfo& chunk_, unsigned streams_, const RetryPolicy& policy_,
          RetryHooks hooks_, FetchCallback done_)
      : sim(sim_), store(store_), dst(dst_), chunk(chunk_), streams(streams_),
        policy(policy_), hooks(std::move(hooks_)), done(std::move(done_)),
        rng(Rng::substream(policy_.seed ^ (static_cast<std::uint64_t>(dst_) << 32),
                           chunk_.id)) {}

  void start_attempt() {
    ++attempt;
    auto st = std::make_shared<Attempt>();
    cur = st;
    issue_request(st, /*is_hedge=*/false);
    auto self = shared_from_this();
    if (policy.hedge_delay_seconds > 0.0) {
      sim.schedule(des::from_seconds(policy.hedge_delay_seconds), [self, st] {
        if (st->settled) return;
        st->hedged = true;
        if (self->hooks.on_hedge) self->hooks.on_hedge(self->attempt);
        self->issue_request(st, /*is_hedge=*/true);
      });
    }
    if (policy.attempt_timeout_seconds > 0.0) {
      sim.schedule(des::from_seconds(policy.attempt_timeout_seconds), [self, st] {
        if (st->settled) return;
        st->settled = true;
        // The in-flight bytes are still moving; they report via on_wasted
        // when (if) they land.
        if (self->hooks.on_fault) {
          self->hooks.on_fault(self->attempt, FetchResult{false, 0});
        }
        self->next_or_give_up(FetchResult{false, 0});
      });
    }
  }

  void issue_request(std::shared_ptr<Attempt> st, bool is_hedge) {
    ++st->outstanding;
    auto self = shared_from_this();
    if (hooks.on_attempt) hooks.on_attempt(attempt);
    store.fetch(dst, chunk, streams, [self, st, is_hedge](const FetchResult& r) {
      --st->outstanding;
      if (st->settled) {
        // Late arrival (timeout fired or the other leg already won): the
        // transfer happened, the copy is unused.
        if (self->hooks.on_wasted && r.bytes_moved > 0) {
          self->hooks.on_wasted(r.bytes_moved);
        }
        return;
      }
      if (r.ok) {
        st->settled = true;
        if (is_hedge && self->hooks.on_hedge_win) {
          self->hooks.on_hedge_win(self->attempt);
        }
        if (self->done) self->done(r);
        return;
      }
      // A failed leg's partial bytes are wasted regardless of what the
      // other leg does.
      if (self->hooks.on_wasted && r.bytes_moved > 0) {
        self->hooks.on_wasted(r.bytes_moved);
      }
      st->last_failure = r;
      if (st->outstanding > 0) return;  // the hedge leg may still deliver
      st->settled = true;
      if (self->hooks.on_fault) self->hooks.on_fault(self->attempt, r);
      self->next_or_give_up(r);
    });
  }

  void next_or_give_up(const FetchResult& failure) {
    if (attempt >= policy.max_attempts) {
      if (done) done(failure);
      return;
    }
    const double delay = policy.backoff_before(attempt + 1, rng);
    if (hooks.on_backoff) hooks.on_backoff(attempt + 1, delay);
    auto self = shared_from_this();
    sim.schedule(des::from_seconds(delay), [self] { self->start_attempt(); });
  }
};

}  // namespace

void fetch_with_retry(des::Simulator& sim, StoreService& store, net::EndpointId dst,
                      const ChunkInfo& chunk, unsigned streams,
                      const RetryPolicy& policy, RetryHooks hooks, FetchCallback done) {
  if (!policy.engaged()) {
    // Fast path: no extra events, no RNG construction — byte-identical to
    // the unwrapped fetch. The wrapper only reports faults the store injects
    // anyway, so fault-free runs see only on_attempt fire.
    if (hooks.on_attempt) hooks.on_attempt(1);
    store.fetch(dst, chunk, streams,
                [hooks = std::move(hooks), done = std::move(done)](const FetchResult& r) {
                  if (!r.ok) {
                    if (hooks.on_wasted && r.bytes_moved > 0) {
                      hooks.on_wasted(r.bytes_moved);
                    }
                    if (hooks.on_fault) hooks.on_fault(1, r);
                  }
                  if (done) done(r);
                });
    return;
  }
  auto op = std::make_shared<RetryOp>(sim, store, dst, chunk, streams, policy,
                                      std::move(hooks), std::move(done));
  op->start_attempt();
}

}  // namespace cloudburst::storage
