#include "storage/local_store.hpp"

#include <algorithm>

namespace cloudburst::storage {

void LocalStore::fetch(net::EndpointId dst, const ChunkInfo& chunk, unsigned streams,
                       FetchCallback on_complete) {
  (void)streams;  // one spindle: parallel streams do not help a local disk
  ++stats_.requests;

  if (offline_) {
    // Blacked-out storage node: the request still pays the service latency,
    // then fails without moving a byte or disturbing the head position.
    ++stats_.faults;
    sim_.schedule(params_.request_latency, [cb = std::move(on_complete)] {
      if (cb) cb(FetchResult{false, 0});
    });
    return;
  }

  stats_.bytes_served += chunk.bytes;

  // Sequential-read detection: continuing the same file at the next chunk
  // index from the same reader avoids the seek.
  auto& pos = positions_[chunk.file];
  const bool sequential = pos.reader == dst && pos.next_index == chunk.index_in_file;
  if (!sequential) ++stats_.seeks;
  pos.reader = dst;
  pos.next_index = chunk.index_in_file + 1;

  des::SimDuration delay = params_.request_latency;
  if (!sequential) delay += params_.seek_latency;

  auto pending = std::make_shared<Pending>();
  pending->req_id = next_req_id_++;
  pending->cb = std::move(on_complete);
  pending->bytes = chunk.bytes;
  inflight_.emplace(pending->req_id, pending);

  sim_.schedule(delay, [this, dst, pending] {
    if (pending->aborted) return;
    pending->flow = net_.start_flow(endpoint_, dst, pending->bytes,
                                    params_.per_stream_bandwidth, [this, pending] {
                                      inflight_.erase(pending->req_id);
                                      if (pending->cb) {
                                        pending->cb(FetchResult{true, pending->bytes});
                                      }
                                    });
  });
}

void LocalStore::set_offline(bool offline) {
  if (offline_ == offline) return;
  offline_ = offline;
  if (!offline_) return;
  // Abort every in-flight read, in request order: cancel its transfer (the
  // completion callback never fires), charge only the bytes that actually
  // crossed, and fail the request so the reader's retry path reroutes it.
  auto doomed = std::move(inflight_);
  inflight_.clear();
  for (auto& [req_id, pending] : doomed) {
    pending->aborted = true;
    const double unmoved = pending->flow == net::kInvalidFlow
                               ? static_cast<double>(pending->bytes)
                               : net_.cancel_flow(pending->flow);
    const auto unmoved_bytes = static_cast<std::uint64_t>(
        std::min(unmoved, static_cast<double>(pending->bytes)));
    stats_.bytes_served -= unmoved_bytes;
    ++stats_.faults;
    const FetchResult result{false, pending->bytes - unmoved_bytes};
    sim_.schedule(0, [pending, result] {
      if (pending->cb) pending->cb(result);
    });
  }
}

}  // namespace cloudburst::storage
