#include "storage/local_store.hpp"

namespace cloudburst::storage {

void LocalStore::fetch(net::EndpointId dst, const ChunkInfo& chunk, unsigned streams,
                       FetchCallback on_complete) {
  (void)streams;  // one spindle: parallel streams do not help a local disk
  ++stats_.requests;
  stats_.bytes_served += chunk.bytes;

  // Sequential-read detection: continuing the same file at the next chunk
  // index from the same reader avoids the seek.
  auto& pos = positions_[chunk.file];
  const bool sequential = pos.reader == dst && pos.next_index == chunk.index_in_file;
  if (!sequential) ++stats_.seeks;
  pos.reader = dst;
  pos.next_index = chunk.index_in_file + 1;

  des::SimDuration delay = params_.request_latency;
  if (!sequential) delay += params_.seek_latency;

  const std::uint64_t bytes = chunk.bytes;
  sim_.schedule(delay, [this, dst, bytes, cb = std::move(on_complete)]() mutable {
    net_.start_flow(endpoint_, dst, bytes, params_.per_stream_bandwidth,
                    [bytes, cb = std::move(cb)] {
                      if (cb) cb(FetchResult{true, bytes});
                    });
  });
}

}  // namespace cloudburst::storage
