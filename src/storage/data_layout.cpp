#include "storage/data_layout.hpp"

#include <cmath>
#include <stdexcept>

namespace cloudburst::storage {

DataLayout::DataLayout(std::vector<FileInfo> files, std::vector<ChunkInfo> chunks)
    : files_(std::move(files)), chunks_(std::move(chunks)) {
  for (const auto& c : chunks_) {
    total_bytes_ += c.bytes;
    total_units_ += c.units;
  }
  // Sanity: chunk ids must be dense and consistent with their files.
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    if (chunks_[i].id != static_cast<ChunkId>(i)) {
      throw std::invalid_argument("DataLayout: chunk ids must be dense");
    }
    if (chunks_[i].file >= files_.size()) {
      throw std::invalid_argument("DataLayout: chunk references unknown file");
    }
  }
}

std::vector<ChunkId> DataLayout::chunks_on(StoreId store) const {
  std::vector<ChunkId> out;
  for (const auto& c : chunks_) {
    if (files_[c.file].store == store) out.push_back(c.id);
  }
  return out;
}

std::uint64_t DataLayout::bytes_on(StoreId store) const {
  std::uint64_t total = 0;
  for (const auto& c : chunks_) {
    if (files_[c.file].store == store) total += c.bytes;
  }
  return total;
}

DataLayout build_layout(const LayoutSpec& spec) {
  if (spec.num_files == 0 || spec.chunks_per_file == 0 || spec.unit_bytes == 0) {
    throw std::invalid_argument("build_layout: files, chunks_per_file, unit_bytes must be > 0");
  }
  const std::uint32_t total_chunks = spec.num_files * spec.chunks_per_file;
  if (spec.total_bytes < total_chunks) {
    throw std::invalid_argument("build_layout: dataset smaller than one byte per chunk");
  }

  std::vector<FileInfo> files;
  std::vector<ChunkInfo> chunks;
  files.reserve(spec.num_files);
  chunks.reserve(total_chunks);

  // Distribute bytes across chunks evenly; the first (total % chunks) chunks
  // take one extra byte so every byte is accounted for.
  const std::uint64_t base = spec.total_bytes / total_chunks;
  const std::uint64_t extra = spec.total_bytes % total_chunks;

  ChunkId next_chunk = 0;
  for (FileId f = 0; f < spec.num_files; ++f) {
    FileInfo fi;
    fi.id = f;
    fi.name = spec.file_prefix + "_" + std::to_string(f) + ".dat";
    fi.first_chunk = next_chunk;
    fi.chunk_count = spec.chunks_per_file;
    std::uint64_t offset = 0;
    for (std::uint32_t k = 0; k < spec.chunks_per_file; ++k) {
      ChunkInfo ci;
      ci.id = next_chunk;
      ci.file = f;
      ci.index_in_file = k;
      ci.offset = offset;
      ci.bytes = base + (next_chunk < extra ? 1 : 0);
      ci.units = ci.bytes / spec.unit_bytes;  // trailing partial unit is padding
      if (ci.units == 0) ci.units = 1;        // never a zero-work job
      offset += ci.bytes;
      chunks.push_back(ci);
      ++next_chunk;
    }
    fi.bytes = offset;
    files.push_back(std::move(fi));
  }
  return DataLayout(std::move(files), std::move(chunks));
}

DataLayout build_layout_for_units(std::uint64_t total_units, std::uint64_t unit_bytes,
                                  std::uint32_t num_files, std::uint32_t chunks_per_file,
                                  const std::string& file_prefix) {
  if (num_files == 0 || chunks_per_file == 0 || unit_bytes == 0) {
    throw std::invalid_argument(
        "build_layout_for_units: files, chunks_per_file, unit_bytes must be > 0");
  }
  const std::uint32_t total_chunks = num_files * chunks_per_file;
  if (total_units < total_chunks) {
    throw std::invalid_argument("build_layout_for_units: need at least one unit per chunk");
  }
  const std::uint64_t base = total_units / total_chunks;
  const std::uint64_t extra = total_units % total_chunks;

  std::vector<FileInfo> files;
  std::vector<ChunkInfo> chunks;
  files.reserve(num_files);
  chunks.reserve(total_chunks);
  ChunkId next_chunk = 0;
  for (FileId f = 0; f < num_files; ++f) {
    FileInfo fi;
    fi.id = f;
    fi.name = file_prefix + "_" + std::to_string(f) + ".dat";
    fi.first_chunk = next_chunk;
    fi.chunk_count = chunks_per_file;
    std::uint64_t offset = 0;
    for (std::uint32_t k = 0; k < chunks_per_file; ++k) {
      ChunkInfo ci;
      ci.id = next_chunk;
      ci.file = f;
      ci.index_in_file = k;
      ci.offset = offset;
      ci.units = base + (next_chunk < extra ? 1 : 0);
      ci.bytes = ci.units * unit_bytes;
      offset += ci.bytes;
      chunks.push_back(ci);
      ++next_chunk;
    }
    fi.bytes = offset;
    files.push_back(std::move(fi));
  }
  return DataLayout(std::move(files), std::move(chunks));
}

double assign_stores_by_fraction(DataLayout& layout, double fraction_on_first,
                                 StoreId first, StoreId second) {
  if (fraction_on_first < 0.0 || fraction_on_first > 1.0) {
    throw std::invalid_argument("fraction_on_first must be within [0,1]");
  }
  const std::uint64_t total = layout.total_bytes();
  const auto target = static_cast<std::uint64_t>(
      std::llround(fraction_on_first * static_cast<double>(total)));

  // Greedy prefix assignment: keep adding whole files to `first` while doing
  // so brings the byte count closer to the target.
  std::uint64_t assigned = 0;
  for (const auto& f : layout.files()) {
    const std::uint64_t with = assigned + f.bytes;
    const std::uint64_t err_without = assigned > target ? assigned - target : target - assigned;
    const std::uint64_t err_with = with > target ? with - target : target - with;
    if (err_with <= err_without) {
      layout.move_file(f.id, first);
      assigned = with;
    } else {
      layout.move_file(f.id, second);
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(assigned) / static_cast<double>(total);
}

std::vector<double> assign_stores_by_weights(DataLayout& layout,
                                             const std::vector<double>& weights,
                                             const std::vector<StoreId>& stores) {
  if (stores.empty() || weights.size() != stores.size()) {
    throw std::invalid_argument("assign_stores_by_weights: need one weight per store");
  }
  double weight_sum = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("assign_stores_by_weights: negative weight");
    weight_sum += w;
  }
  if (weight_sum <= 0.0) {
    throw std::invalid_argument("assign_stores_by_weights: weights sum to zero");
  }

  const std::uint64_t total = layout.total_bytes();
  std::vector<std::uint64_t> assigned(stores.size(), 0);
  // Walk the files once; a file goes to the current store until moving on to
  // the next store's run gets the cumulative split closer to the targets.
  std::size_t current = 0;
  double target_prefix = weights[0] / weight_sum * static_cast<double>(total);
  std::uint64_t prefix = 0;
  for (const auto& f : layout.files()) {
    while (current + 1 < stores.size()) {
      const double err_stay =
          std::abs(static_cast<double>(prefix + f.bytes) - target_prefix);
      const double err_advance = std::abs(static_cast<double>(prefix) - target_prefix);
      if (err_stay <= err_advance) break;
      ++current;
      target_prefix += weights[current] / weight_sum * static_cast<double>(total);
    }
    layout.move_file(f.id, stores[current]);
    assigned[current] += f.bytes;
    prefix += f.bytes;
  }

  std::vector<double> achieved(stores.size(), 0.0);
  if (total > 0) {
    for (std::size_t i = 0; i < stores.size(); ++i) {
      achieved[i] = static_cast<double>(assigned[i]) / static_cast<double>(total);
    }
  }
  return achieved;
}

namespace {
constexpr std::uint32_t kIndexMagic = 0x43424458;  // "CBDX"
constexpr std::uint32_t kIndexVersion = 1;
}  // namespace

void serialize_index(const DataLayout& layout, BufferWriter& out) {
  out.write_u32(kIndexMagic);
  out.write_u32(kIndexVersion);
  out.write_u64(layout.files().size());
  for (const auto& f : layout.files()) {
    out.write_u32(f.id);
    out.write_string(f.name);
    out.write_u64(f.bytes);
    out.write_u32(f.store);
    out.write_u32(f.first_chunk);
    out.write_u32(f.chunk_count);
  }
  out.write_u64(layout.chunks().size());
  for (const auto& c : layout.chunks()) {
    out.write_u32(c.id);
    out.write_u32(c.file);
    out.write_u32(c.index_in_file);
    out.write_u64(c.offset);
    out.write_u64(c.bytes);
    out.write_u64(c.units);
  }
}

DataLayout parse_index(BufferReader& in) {
  if (in.read_u32() != kIndexMagic) throw std::runtime_error("data index: bad magic");
  if (in.read_u32() != kIndexVersion) throw std::runtime_error("data index: bad version");
  const std::uint64_t nfiles = in.read_u64();
  std::vector<FileInfo> files(nfiles);
  for (auto& f : files) {
    f.id = in.read_u32();
    f.name = in.read_string();
    f.bytes = in.read_u64();
    f.store = in.read_u32();
    f.first_chunk = in.read_u32();
    f.chunk_count = in.read_u32();
  }
  const std::uint64_t nchunks = in.read_u64();
  std::vector<ChunkInfo> chunks(nchunks);
  for (auto& c : chunks) {
    c.id = in.read_u32();
    c.file = in.read_u32();
    c.index_in_file = in.read_u32();
    c.offset = in.read_u64();
    c.bytes = in.read_u64();
    c.units = in.read_u64();
  }
  return DataLayout(std::move(files), std::move(chunks));
}

}  // namespace cloudburst::storage
