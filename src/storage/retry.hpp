// Retry policy for store fetches.
//
// Wraps StoreService::fetch with the client-side resilience loop an S3
// consumer actually runs: bounded attempts, exponential backoff with
// deterministic jitter, a per-attempt timeout that abandons hung GETs, and
// an optional hedged second request that races the primary after a quantile
// delay (the classic tail-latency cure). The wrapper is policy-only — the
// store keeps modeling the faults, the network keeps moving the bytes (an
// abandoned GET's flow keeps occupying its links until it drains).
//
// Determinism: backoff jitter draws from an Rng substream derived from
// (policy.seed, dst, chunk id), independent of event interleaving. A
// disengaged policy (1 attempt, no timeout, no hedge) calls the store
// directly — no extra simulation events, no RNG draws — so default-off runs
// are byte-identical to the unwrapped path.
#pragma once

#include <cstdint>
#include <functional>

#include "common/rng.hpp"
#include "des/simulator.hpp"
#include "storage/store_service.hpp"

namespace cloudburst::storage {

struct RetryPolicy {
  /// Total tries per fetch cycle; 1 = no retry.
  unsigned max_attempts = 1;

  /// Backoff before attempt k (k >= 2): base * multiplier^(k-2), capped at
  /// backoff_max_seconds, then jittered by a uniform factor in
  /// [1 - jitter_fraction, 1 + jitter_fraction].
  double backoff_base_seconds = 0.05;
  double backoff_multiplier = 2.0;
  double backoff_max_seconds = 10.0;
  double jitter_fraction = 0.0;

  /// Abandon an attempt after this long (0 = never). The GET's flow keeps
  /// draining in the network; its late arrival is ignored (and billed).
  double attempt_timeout_seconds = 0.0;

  /// Issue a second identical GET this long into an attempt (0 = off). The
  /// first success settles the attempt; the loser's bytes are wasted.
  double hedge_delay_seconds = 0.0;

  /// Substream seed for jitter draws (namespaced per dst/chunk).
  std::uint64_t seed = 0xbac0ff;

  /// Anything beyond a single bare attempt?
  bool engaged() const {
    return max_attempts > 1 || attempt_timeout_seconds > 0.0 ||
           hedge_delay_seconds > 0.0;
  }

  double backoff_before(unsigned attempt, Rng& rng) const;
};

/// Observer hooks for one retrying fetch; every member may be left null.
/// Wire-byte accounting invariant: every request the store completes reports
/// its bytes exactly once — through the final success result, or through
/// on_wasted (failed attempts, hedge losers, post-timeout arrivals).
struct RetryHooks {
  /// A physical store request is about to be issued (first try, retry, or
  /// hedge leg — one call per StoreService::fetch). Lets a caller keep its
  /// own per-run request count: in a multi-job workload the store's global
  /// stats() aggregate every job, so per-tenant accounting needs this.
  std::function<void(unsigned attempt)> on_attempt;
  /// An attempt settled as a failure (store fault, or timeout with
  /// result.bytes_moved = 0 since the bytes are still in flight).
  std::function<void(unsigned attempt, const FetchResult&)> on_fault;
  /// Backing off before `next_attempt` for `delay_seconds`.
  std::function<void(unsigned next_attempt, double delay_seconds)> on_backoff;
  std::function<void(unsigned attempt)> on_hedge;
  std::function<void(unsigned attempt)> on_hedge_win;
  /// Wire bytes that moved but were not the delivered copy.
  std::function<void(std::uint64_t bytes)> on_wasted;
};

/// Fetch `chunk` from `store` under `policy`. `done` fires exactly once:
/// with the delivering request's success, or with the last failure once
/// attempts are exhausted. With a disengaged policy this forwards straight
/// to store.fetch.
void fetch_with_retry(des::Simulator& sim, StoreService& store, net::EndpointId dst,
                      const ChunkInfo& chunk, unsigned streams,
                      const RetryPolicy& policy, RetryHooks hooks, FetchCallback done);

}  // namespace cloudburst::storage
