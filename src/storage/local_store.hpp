// LocalStore: the cluster's dedicated storage node.
//
// Models a single storage server (the paper's 4 TB SATA node) whose disk
// bandwidth is the access link created by the platform builder. On top of
// the link-level sharing it adds a *seek penalty*: a read that does not
// continue the previous sequential position of its file (different reader or
// non-consecutive chunk) pays `seek_latency` before bytes start moving.
// This is what makes the head node's consecutive-job batching and
// minimum-contention file selection measurable optimizations.
#pragma once

#include <map>
#include <memory>
#include <unordered_map>

#include "des/simulator.hpp"
#include "storage/store_service.hpp"

namespace cloudburst::storage {

class LocalStore final : public StoreService {
 public:
  struct Params {
    des::SimDuration seek_latency = 0;     ///< cost of a non-sequential access
    des::SimDuration request_latency = 0;  ///< fixed per-request service time
    /// Per-read-stream throughput cap (a single reader cannot saturate the
    /// array; 0 = uncapped). The aggregate is still bounded by the disk link.
    double per_stream_bandwidth = 0.0;
  };

  LocalStore(StoreId id, des::Simulator& sim, net::Network& net, net::EndpointId ep,
             Params params)
      : id_(id), sim_(sim), net_(net), endpoint_(ep), params_(params) {}

  /// Disks do not drop connections in this model: barring an offline window
  /// (site blackout), every fetch completes with ok = true (a retry policy
  /// wrapped around this path is a no-op in the healthy case).
  void fetch(net::EndpointId dst, const ChunkInfo& chunk, unsigned streams,
             FetchCallback on_complete) override;

  void set_offline(bool offline) override;
  bool offline() const override { return offline_; }

  net::EndpointId endpoint() const override { return endpoint_; }
  const Stats& stats() const override { return stats_; }
  StoreId id() const override { return id_; }

 private:
  struct FilePosition {
    net::EndpointId reader = static_cast<net::EndpointId>(-1);
    std::uint32_t next_index = 0;  ///< chunk index that would be sequential
  };

  /// One in-flight read: its transfer flow plus abort bookkeeping.
  struct Pending {
    std::uint64_t req_id = 0;
    FetchCallback cb;
    std::uint64_t bytes = 0;
    net::FlowId flow = net::kInvalidFlow;  ///< invalid while in the seek phase
    bool aborted = false;
  };

  StoreId id_;
  des::Simulator& sim_;
  net::Network& net_;
  net::EndpointId endpoint_;
  Params params_;
  Stats stats_;
  std::unordered_map<FileId, FilePosition> positions_;
  bool offline_ = false;
  std::uint64_t next_req_id_ = 0;
  /// In-flight reads by id (id order == request order => deterministic abort
  /// order on set_offline).
  std::map<std::uint64_t, std::shared_ptr<Pending>> inflight_;
};

}  // namespace cloudburst::storage
