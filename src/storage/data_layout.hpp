// Dataset geometry: files -> chunks -> units, plus the data index.
//
// Mirrors the paper's three-level data organization:
//  * the data set is divided into files (file-system friendly, distributable),
//  * files are split into logical chunks sized for compute-node memory —
//    one chunk == one *job* in the middleware,
//  * chunks consist of atomic data units (elements), grouped at processing
//    time to fit the CPU cache.
//
// The DataIndex is the artifact the paper's "data organizer" produces and the
// head node reads to generate the job pool: chunk locations (file + store),
// offsets, sizes, and unit counts. It serializes to a flat buffer so tests
// can round-trip it like the on-disk index file.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.hpp"

namespace cloudburst::storage {

using StoreId = std::uint32_t;
constexpr StoreId kInvalidStore = static_cast<StoreId>(-1);

using ChunkId = std::uint32_t;
using FileId = std::uint32_t;

struct ChunkInfo {
  ChunkId id = 0;
  FileId file = 0;
  std::uint32_t index_in_file = 0;  ///< ordinal within the file (sequential-read detection)
  std::uint64_t offset = 0;         ///< byte offset within the file
  std::uint64_t bytes = 0;
  std::uint64_t units = 0;          ///< atomic data elements in the chunk

  bool operator==(const ChunkInfo&) const = default;
};

struct FileInfo {
  FileId id = 0;
  std::string name;
  std::uint64_t bytes = 0;
  StoreId store = kInvalidStore;  ///< which storage service hosts this file
  ChunkId first_chunk = 0;
  std::uint32_t chunk_count = 0;

  bool operator==(const FileInfo&) const = default;
};

/// Immutable dataset description; chunk ids are dense [0, chunk_count).
class DataLayout {
 public:
  DataLayout() = default;
  DataLayout(std::vector<FileInfo> files, std::vector<ChunkInfo> chunks);

  const std::vector<FileInfo>& files() const { return files_; }
  const std::vector<ChunkInfo>& chunks() const { return chunks_; }
  const FileInfo& file(FileId id) const { return files_.at(id); }
  const ChunkInfo& chunk(ChunkId id) const { return chunks_.at(id); }

  std::uint64_t total_bytes() const { return total_bytes_; }
  std::uint64_t total_units() const { return total_units_; }

  /// Store hosting a chunk (via its file).
  StoreId store_of(ChunkId id) const { return files_.at(chunks_.at(id).file).store; }

  /// Chunk ids hosted on `store`, in id order.
  std::vector<ChunkId> chunks_on(StoreId store) const;

  /// Bytes hosted on `store`.
  std::uint64_t bytes_on(StoreId store) const;

  /// Reassign one file to a different store.
  void move_file(FileId id, StoreId store) { files_.at(id).store = store; }

  bool operator==(const DataLayout&) const = default;

 private:
  std::vector<FileInfo> files_;
  std::vector<ChunkInfo> chunks_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_units_ = 0;
};

/// Parameters for the data organizer.
struct LayoutSpec {
  std::uint64_t total_bytes = 0;
  std::uint32_t num_files = 1;
  std::uint32_t chunks_per_file = 1;
  std::uint64_t unit_bytes = 1;  ///< element size; units = chunk bytes / unit size
  std::string file_prefix = "data";
};

/// The "data organizer": analyze a dataset spec and emit its layout/index.
/// Bytes are spread as evenly as integer arithmetic allows; every byte is
/// accounted for (sum of chunk bytes == total_bytes).
DataLayout build_layout(const LayoutSpec& spec);

/// Unit-exact variant for real-execution runs: distributes `total_units`
/// across files x chunks so that the chunk unit counts sum to exactly
/// total_units (chunk bytes = units * unit_bytes). Required when a layout
/// must tile an in-memory dataset.
DataLayout build_layout_for_units(std::uint64_t total_units, std::uint64_t unit_bytes,
                                  std::uint32_t num_files, std::uint32_t chunks_per_file,
                                  const std::string& file_prefix = "data");

/// Split the files of `layout` between two stores so that the *byte*
/// fraction on `first` is as close to `fraction_on_first` as possible, with
/// whole files as the granularity (files are contiguous: the first k files
/// land on `first`). Returns the achieved fraction.
double assign_stores_by_fraction(DataLayout& layout, double fraction_on_first,
                                 StoreId first, StoreId second);

/// N-way generalization: split the files across `stores` so each store's
/// byte share approximates its weight (contiguous whole-file runs, in store
/// order, like the two-way version). Weights need not be normalized.
/// Returns the achieved byte fraction per store.
std::vector<double> assign_stores_by_weights(DataLayout& layout,
                                             const std::vector<double>& weights,
                                             const std::vector<StoreId>& stores);

/// Serialize / parse the index file the head node reads at startup.
void serialize_index(const DataLayout& layout, BufferWriter& out);
DataLayout parse_index(BufferReader& in);

}  // namespace cloudburst::storage
