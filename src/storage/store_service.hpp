// Storage service interface.
//
// A store hosts dataset files and serves chunk reads to compute nodes. Two
// implementations model the paper's setup: LocalStore (the cluster's
// dedicated storage node and its disk) and ObjectStore (Amazon S3). Both are
// simulation actors whose transfers ride the shared network, so retrieval
// contention — the dominant overhead in the evaluation — emerges from the
// flow model rather than from per-store magic numbers.
#pragma once

#include <cstdint>
#include <functional>

#include "net/network.hpp"
#include "storage/data_layout.hpp"

namespace cloudburst::storage {

/// Outcome of one fetch request. A fault-free store always completes with
/// ok = true and the full chunk moved; a faulted GET reports ok = false and
/// the partial bytes that still crossed the network before the abort.
struct FetchResult {
  bool ok = true;
  std::uint64_t bytes_moved = 0;  ///< wire bytes actually transferred
};

using FetchCallback = std::function<void(const FetchResult&)>;

class StoreService {
 public:
  virtual ~StoreService() = default;

  struct Stats {
    std::uint64_t requests = 0;
    /// Wire bytes actually transferred (a faulted GET counts only its
    /// partial bytes).
    std::uint64_t bytes_served = 0;
    std::uint64_t seeks = 0;      ///< LocalStore only; 0 for object stores
    std::uint64_t faults = 0;     ///< requests that failed mid-transfer
    std::uint64_t hung = 0;       ///< requests that straggled at hang latency
    std::uint64_t throttled = 0;  ///< requests issued inside a throttle window
  };

  /// Deliver `chunk` to endpoint `dst` using up to `streams` parallel
  /// transfer streams (the slave's retrieval threads). `on_complete` fires
  /// when the request settles: last byte arrived (ok) or the transfer
  /// aborted after a partial move (fault).
  virtual void fetch(net::EndpointId dst, const ChunkInfo& chunk, unsigned streams,
                     FetchCallback on_complete) = 0;

  /// Take the store offline (a site blackout) or bring it back. While
  /// offline, new fetches fail fast (ok = false after the request latency)
  /// and going offline aborts every in-flight request: its network flows are
  /// cancelled and its callback fires with ok = false and the bytes that had
  /// already crossed — so in-flight GETs reroute through the retry path.
  virtual void set_offline(bool offline) = 0;
  virtual bool offline() const = 0;

  virtual net::EndpointId endpoint() const = 0;
  virtual const Stats& stats() const = 0;
  virtual StoreId id() const = 0;
};

}  // namespace cloudburst::storage
