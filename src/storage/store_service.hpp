// Storage service interface.
//
// A store hosts dataset files and serves chunk reads to compute nodes. Two
// implementations model the paper's setup: LocalStore (the cluster's
// dedicated storage node and its disk) and ObjectStore (Amazon S3). Both are
// simulation actors whose transfers ride the shared network, so retrieval
// contention — the dominant overhead in the evaluation — emerges from the
// flow model rather than from per-store magic numbers.
#pragma once

#include <cstdint>
#include <functional>

#include "net/network.hpp"
#include "storage/data_layout.hpp"

namespace cloudburst::storage {

class StoreService {
 public:
  virtual ~StoreService() = default;

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t bytes_served = 0;
    std::uint64_t seeks = 0;  ///< LocalStore only; 0 for object stores
  };

  /// Deliver `chunk` to endpoint `dst` using up to `streams` parallel
  /// transfer streams (the slave's retrieval threads). `on_complete` fires
  /// when the last byte arrives at `dst`.
  virtual void fetch(net::EndpointId dst, const ChunkInfo& chunk, unsigned streams,
                     std::function<void()> on_complete) = 0;

  virtual net::EndpointId endpoint() const = 0;
  virtual const Stats& stats() const = 0;
  virtual StoreId id() const = 0;
};

}  // namespace cloudburst::storage
