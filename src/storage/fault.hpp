// Transient store-fault model.
//
// The paper's slaves stream chunks from real Amazon S3, which throttles
// (503 SlowDown), drops connections, and has heavy-tailed GET latency. A
// FaultProfile attaches those behaviors to an ObjectStore:
//  * per-request failure probability — the GET aborts after moving a
//    deterministic fraction of the chunk (the partial transfer still crosses
//    the network and is billed as egress);
//  * timed throttling windows — while the window is open every GET runs at a
//    degraded per-connection bandwidth factor and an extra failure
//    probability applies (a SlowDown storm);
//  * a "hung GET" mode — with hang_probability the request's first-byte
//    latency balloons to hang_seconds (the tail-latency straggler a hedged
//    or timed-out retry rescues).
//
// All draws come from a deterministic Rng substream seeded from
// (seed, store id), so runs are bit-reproducible. A default-constructed
// profile is disabled: the store consumes no random numbers and behaves
// exactly as the fault-free model — paper runs stay byte-identical.
#pragma once

#include <cstdint>
#include <vector>

namespace cloudburst::storage {

struct FaultProfile {
  /// Probability that a GET fails after a partial transfer.
  double fail_probability = 0.0;

  /// Probability that a GET hangs: first-byte latency becomes hang_seconds.
  double hang_probability = 0.0;
  double hang_seconds = 0.0;

  /// A degraded-service period (overload, SlowDown storm).
  ///
  /// Window membership is half-open — [begin_seconds, end_seconds): a GET
  /// issued exactly at begin_seconds is throttled, one issued exactly at
  /// end_seconds is not (ObjectStore tests `now >= begin && now < end`).
  /// Callers aligning windows to other events rely on this; it is pinned by
  /// ObjectStoreFaults.ThrottleWindowBoundaryIsHalfOpen.
  struct Throttle {
    double begin_seconds = 0.0;
    double end_seconds = 0.0;
    /// Multiplies the per-connection bandwidth cap while the window is open.
    double bandwidth_factor = 1.0;
    /// Extra failure probability while the window is open (adds to
    /// fail_probability, clamped to 1).
    double fail_probability = 0.0;
  };
  std::vector<Throttle> throttles;

  /// Substream seed for this profile's draws (namespaced per store id).
  std::uint64_t seed = 0xfa017;

  bool enabled() const {
    return fail_probability > 0.0 || hang_probability > 0.0 || !throttles.empty();
  }
};

}  // namespace cloudburst::storage
