#include "storage/object_store.hpp"

#include <algorithm>
#include <memory>

namespace cloudburst::storage {

void ObjectStore::fetch(net::EndpointId dst, const ChunkInfo& chunk, unsigned streams,
                        FetchCallback on_complete) {
  streams = std::max(1u, streams);
  ++stats_.requests;

  if (offline_) {
    // Blacked-out store: the request still pays the first-byte latency, then
    // fails without moving a byte (and without consuming fault randomness,
    // so the post-recovery draw sequence only depends on served requests).
    ++stats_.faults;
    sim_.schedule(params_.request_latency, [cb = std::move(on_complete)] {
      if (cb) cb(FetchResult{false, 0});
    });
    return;
  }

  // Fault model. Draw order is fixed (throttle scan, failure, hang) so runs
  // are reproducible; a disabled profile takes none of these branches and
  // consumes no randomness.
  double bandwidth = params_.per_connection_bandwidth;
  des::SimDuration latency = params_.request_latency;
  bool failed = false;
  std::uint64_t wire_bytes = chunk.bytes;
  if (params_.fault.enabled()) {
    const double now = des::to_seconds(sim_.now());
    double p_fail = params_.fault.fail_probability;
    bool in_window = false;
    for (const auto& w : params_.fault.throttles) {
      if (now >= w.begin_seconds && now < w.end_seconds) {
        in_window = true;
        bandwidth *= w.bandwidth_factor;
        p_fail = std::min(1.0, p_fail + w.fail_probability);
      }
    }
    if (in_window) ++stats_.throttled;
    if (p_fail > 0.0 && rng_.bernoulli(p_fail)) {
      // The GET aborts partway: a deterministic fraction of the chunk still
      // crosses the network before the connection drops.
      failed = true;
      wire_bytes = static_cast<std::uint64_t>(rng_.next_double() *
                                              static_cast<double>(chunk.bytes));
      ++stats_.faults;
    } else if (params_.fault.hang_probability > 0.0 &&
               rng_.bernoulli(params_.fault.hang_probability)) {
      latency = des::from_seconds(params_.fault.hang_seconds);
      ++stats_.hung;
    }
  }
  stats_.bytes_served += wire_bytes;

  // Split the transfer into `streams` range GETs; the completion counter
  // fires the callback when the final range lands. The request is tracked
  // in inflight_ until it settles so set_offline can abort it.
  auto pending = std::make_shared<Pending>();
  pending->req_id = next_req_id_++;
  pending->remaining = streams;
  pending->cb = std::move(on_complete);
  pending->result = FetchResult{!failed, wire_bytes};
  inflight_.emplace(pending->req_id, pending);

  if (wire_bytes == 0) {
    // Instant abort (or empty chunk): still pays the request latency.
    sim_.schedule(latency, [this, pending] {
      if (pending->aborted) return;
      inflight_.erase(pending->req_id);
      if (pending->cb) pending->cb(pending->result);
    });
    return;
  }

  pending->unstarted_bytes = static_cast<double>(wire_bytes);
  const std::uint64_t base = wire_bytes / streams;
  const std::uint64_t extra = wire_bytes % streams;
  for (unsigned s = 0; s < streams; ++s) {
    const std::uint64_t part = base + (s < extra ? 1 : 0);
    sim_.schedule(latency, [this, dst, part, bandwidth, pending] {
      if (pending->aborted) return;
      pending->unstarted_bytes -= static_cast<double>(part);
      const net::FlowId flow =
          net_.start_flow(endpoint_, dst, part, bandwidth, [this, pending] {
            if (--pending->remaining == 0) {
              inflight_.erase(pending->req_id);
              if (pending->cb) pending->cb(pending->result);
            }
          });
      pending->flows.push_back(flow);
    });
  }
}

void ObjectStore::set_offline(bool offline) {
  if (offline_ == offline) return;
  offline_ = offline;
  if (!offline_) return;
  // Abort every in-flight request, in request order: cancel its flows (their
  // completion callbacks never fire), charge only the bytes that actually
  // crossed, and fail the request so the reader's retry path reroutes it.
  auto doomed = std::move(inflight_);
  inflight_.clear();
  for (auto& [req_id, pending] : doomed) {
    pending->aborted = true;
    double unmoved = pending->unstarted_bytes;
    for (net::FlowId f : pending->flows) unmoved += net_.cancel_flow(f);
    const auto unmoved_bytes = static_cast<std::uint64_t>(
        std::min(unmoved, static_cast<double>(pending->result.bytes_moved)));
    pending->result.ok = false;
    pending->result.bytes_moved -= unmoved_bytes;
    stats_.bytes_served -= unmoved_bytes;
    ++stats_.faults;
    sim_.schedule(0, [pending] {
      if (pending->cb) pending->cb(pending->result);
    });
  }
}

}  // namespace cloudburst::storage
