#include "storage/object_store.hpp"

#include <algorithm>
#include <memory>

namespace cloudburst::storage {

void ObjectStore::fetch(net::EndpointId dst, const ChunkInfo& chunk, unsigned streams,
                        std::function<void()> on_complete) {
  streams = std::max(1u, streams);
  ++stats_.requests;
  stats_.bytes_served += chunk.bytes;

  // Split the chunk into `streams` range GETs; the completion counter fires
  // the callback when the final range lands.
  struct Pending {
    unsigned remaining;
    std::function<void()> cb;
  };
  auto pending = std::make_shared<Pending>(Pending{streams, std::move(on_complete)});

  const std::uint64_t base = chunk.bytes / streams;
  const std::uint64_t extra = chunk.bytes % streams;
  for (unsigned s = 0; s < streams; ++s) {
    const std::uint64_t part = base + (s < extra ? 1 : 0);
    sim_.schedule(params_.request_latency, [this, dst, part, pending] {
      net_.start_flow(endpoint_, dst, part, params_.per_connection_bandwidth, [pending] {
        if (--pending->remaining == 0 && pending->cb) pending->cb();
      });
    });
  }
}

}  // namespace cloudburst::storage
