#include "trace/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

namespace cloudburst::trace {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::JobAssigned: return "JobAssigned";
    case EventKind::FetchStart: return "FetchStart";
    case EventKind::FetchEnd: return "FetchEnd";
    case EventKind::ProcessStart: return "ProcessStart";
    case EventKind::ProcessEnd: return "ProcessEnd";
    case EventKind::RobjSent: return "RobjSent";
    case EventKind::RobjMerged: return "RobjMerged";
    case EventKind::BatchRequested: return "BatchRequested";
    case EventKind::BatchGranted: return "BatchGranted";
    case EventKind::SlaveFailed: return "SlaveFailed";
    case EventKind::InstanceActivated: return "InstanceActivated";
    case EventKind::CacheHit: return "CacheHit";
    case EventKind::CacheMiss: return "CacheMiss";
    case EventKind::CacheEvict: return "CacheEvict";
    case EventKind::PrefetchIssued: return "PrefetchIssued";
    case EventKind::PrefetchWasted: return "PrefetchWasted";
    case EventKind::StoreFault: return "StoreFault";
    case EventKind::RetryBackoff: return "RetryBackoff";
    case EventKind::HedgeIssued: return "HedgeIssued";
    case EventKind::HedgeWon: return "HedgeWon";
    case EventKind::RunEnd: return "RunEnd";
    case EventKind::JobSubmitted: return "JobSubmitted";
    case EventKind::JobStarted: return "JobStarted";
    case EventKind::JobPreempted: return "JobPreempted";
    case EventKind::JobFinished: return "JobFinished";
    case EventKind::NodeDrainRequested: return "NodeDrainRequested";
    case EventKind::NodeVacated: return "NodeVacated";
    case EventKind::NodeReclaimed: return "NodeReclaimed";
    case EventKind::CheckpointFlushed: return "CheckpointFlushed";
    case EventKind::JobMigrated: return "JobMigrated";
    case EventKind::ReplicaCreated: return "ReplicaCreated";
    case EventKind::ReplicaLost: return "ReplicaLost";
    case EventKind::ReplicaRepaired: return "ReplicaRepaired";
    case EventKind::QosThrottled: return "QosThrottled";
    case EventKind::ReservationGranted: return "ReservationGranted";
    case EventKind::ReservationRejected: return "ReservationRejected";
    case EventKind::NodeRegistered: return "NodeRegistered";
    case EventKind::NodeRetired: return "NodeRetired";
    case EventKind::LeaseGranted: return "LeaseGranted";
    case EventKind::LeaseReturned: return "LeaseReturned";
    case EventKind::JobRejected: return "JobRejected";
    case EventKind::LinkDown: return "LinkDown";
    case EventKind::LinkRestored: return "LinkRestored";
    case EventKind::StoreOffline: return "StoreOffline";
    case EventKind::StoreOnline: return "StoreOnline";
    case EventKind::SiteOutage: return "SiteOutage";
    case EventKind::SiteRecovered: return "SiteRecovered";
  }
  return "?";
}

void Tracer::record(double t, EventKind kind, std::string actor, std::uint64_t a,
                    std::uint64_t b) {
  events_.push_back(Event{t, kind, std::move(actor), a, b});
}

std::size_t Tracer::count(EventKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [kind](const Event& e) { return e.kind == kind; }));
}

std::string Tracer::to_jsonl() const {
  std::string out;
  char line[256];
  for (const Event& e : events_) {
    std::snprintf(line, sizeof(line),
                  "{\"t\":%.6f,\"kind\":\"%s\",\"actor\":\"%s\",\"a\":%llu,\"b\":%llu}\n",
                  e.t, to_string(e.kind), e.actor.c_str(),
                  static_cast<unsigned long long>(e.a),
                  static_cast<unsigned long long>(e.b));
    out += line;
  }
  return out;
}

std::string Tracer::render_gantt(std::size_t width) const {
  if (events_.empty() || width == 0) return "";
  double t_end = 0.0;
  for (const Event& e : events_) t_end = std::max(t_end, e.t);
  if (t_end <= 0.0) return "";

  // Per-actor interval lists for fetch and process activity.
  struct Row {
    std::vector<std::pair<double, double>> fetch;
    std::vector<std::pair<double, double>> cache_fetch;  ///< served by the site cache
    std::vector<std::pair<double, double>> process;
    std::vector<double> faults;  ///< store faults / retries hit by this actor
    // Workload job lanes (actor = job name).
    std::vector<std::pair<double, double>> queued;
    std::vector<std::pair<double, double>> running;
    std::vector<double> preempts;
    std::vector<std::pair<double, char>> lifecycle;  ///< drain/vacate/reclaim/migrate marks
    std::map<std::uint64_t, double> open_fetch;
    std::map<std::uint64_t, double> open_process;
    std::map<std::uint64_t, double> open_queue;
    std::map<std::uint64_t, double> open_run;
    std::set<std::uint64_t> cache_hits;  ///< chunks this actor hit in cache
  };
  std::map<std::string, Row> rows;
  for (const Event& e : events_) {
    switch (e.kind) {
      case EventKind::FetchStart: rows[e.actor].open_fetch[e.a] = e.t; break;
      case EventKind::StoreFault:
      case EventKind::RetryBackoff: rows[e.actor].faults.push_back(e.t); break;
      case EventKind::CacheHit: rows[e.actor].cache_hits.insert(e.a); break;
      case EventKind::FetchEnd: {
        auto& row = rows[e.actor];
        const auto it = row.open_fetch.find(e.a);
        if (it != row.open_fetch.end()) {
          auto& spans = row.cache_hits.count(e.a) ? row.cache_fetch : row.fetch;
          spans.emplace_back(it->second, e.t);
          row.open_fetch.erase(it);
        }
        break;
      }
      case EventKind::JobSubmitted: rows[e.actor].open_queue[e.a] = e.t; break;
      case EventKind::JobStarted: {
        auto& row = rows[e.actor];
        const auto it = row.open_queue.find(e.a);
        if (it != row.open_queue.end()) {
          row.queued.emplace_back(it->second, e.t);
          row.open_queue.erase(it);
        }
        row.open_run[e.a] = e.t;
        break;
      }
      case EventKind::JobPreempted: rows[e.actor].preempts.push_back(e.t); break;
      case EventKind::NodeDrainRequested: rows[e.actor].lifecycle.emplace_back(e.t, 'D'); break;
      case EventKind::NodeVacated: rows[e.actor].lifecycle.emplace_back(e.t, 'v'); break;
      case EventKind::NodeReclaimed: rows[e.actor].lifecycle.emplace_back(e.t, 'R'); break;
      case EventKind::JobMigrated: rows[e.actor].lifecycle.emplace_back(e.t, 'M'); break;
      case EventKind::ReplicaCreated: rows[e.actor].lifecycle.emplace_back(e.t, '+'); break;
      case EventKind::ReplicaLost: rows[e.actor].lifecycle.emplace_back(e.t, '~'); break;
      case EventKind::ReplicaRepaired: rows[e.actor].lifecycle.emplace_back(e.t, 'r'); break;
      case EventKind::NodeRegistered: rows[e.actor].lifecycle.emplace_back(e.t, '>'); break;
      case EventKind::NodeRetired: rows[e.actor].lifecycle.emplace_back(e.t, '<'); break;
      case EventKind::LeaseGranted: rows[e.actor].lifecycle.emplace_back(e.t, 'L'); break;
      case EventKind::LeaseReturned: rows[e.actor].lifecycle.emplace_back(e.t, '='); break;
      case EventKind::JobRejected: rows[e.actor].lifecycle.emplace_back(e.t, '#'); break;
      case EventKind::LinkDown: rows[e.actor].lifecycle.emplace_back(e.t, 'W'); break;
      case EventKind::LinkRestored: rows[e.actor].lifecycle.emplace_back(e.t, 'w'); break;
      case EventKind::StoreOffline: rows[e.actor].lifecycle.emplace_back(e.t, 'S'); break;
      case EventKind::StoreOnline: rows[e.actor].lifecycle.emplace_back(e.t, 's'); break;
      case EventKind::SiteOutage: rows[e.actor].lifecycle.emplace_back(e.t, 'O'); break;
      case EventKind::SiteRecovered: rows[e.actor].lifecycle.emplace_back(e.t, 'o'); break;
      case EventKind::JobFinished: {
        auto& row = rows[e.actor];
        const auto it = row.open_run.find(e.a);
        if (it != row.open_run.end()) {
          row.running.emplace_back(it->second, e.t);
          row.open_run.erase(it);
        }
        break;
      }
      case EventKind::ProcessStart: rows[e.actor].open_process[e.a] = e.t; break;
      case EventKind::ProcessEnd: {
        auto& row = rows[e.actor];
        const auto it = row.open_process.find(e.a);
        if (it != row.open_process.end()) {
          row.process.emplace_back(it->second, e.t);
          row.open_process.erase(it);
        }
        break;
      }
      default: break;
    }
  }

  auto covers = [&](const std::vector<std::pair<double, double>>& spans, double lo,
                    double hi) {
    for (const auto& [b, e] : spans) {
      if (b < hi && e > lo) return true;
    }
    return false;
  };

  std::string out;
  char header[64];
  std::snprintf(header, sizeof(header), "0s%*s%.1fs\n", static_cast<int>(width), "",
                t_end);
  out += header;
  for (const auto& [actor, row] : rows) {
    if (row.fetch.empty() && row.cache_fetch.empty() && row.process.empty() &&
        row.queued.empty() && row.running.empty() && row.lifecycle.empty()) {
      continue;
    }
    std::string bar(width, '.');
    for (std::size_t i = 0; i < width; ++i) {
      const double lo = t_end * static_cast<double>(i) / static_cast<double>(width);
      const double hi = t_end * static_cast<double>(i + 1) / static_cast<double>(width);
      const bool f = covers(row.fetch, lo, hi);
      const bool c = covers(row.cache_fetch, lo, hi);
      const bool p = covers(row.process, lo, hi);
      bar[i] = p && (f || c) ? '*' : (p ? 'P' : (f ? 'f' : (c ? 'c' : '.')));
      // Job lifecycle lanes only fill bins no node activity claimed.
      if (bar[i] == '.') {
        if (covers(row.running, lo, hi)) {
          bar[i] = 'J';
        } else if (covers(row.queued, lo, hi)) {
          bar[i] = '-';
        }
      }
      // Markers outrank everything: '!' a failed / retried GET, 'x' a
      // preemption hit this bin.
      for (double t : row.preempts) {
        if (t >= lo && t < hi) {
          bar[i] = 'x';
          break;
        }
      }
      for (double t : row.faults) {
        if (t >= lo && t < hi) {
          bar[i] = '!';
          break;
        }
      }
      for (const auto& [t, mark] : row.lifecycle) {
        if (t >= lo && t < hi) {
          bar[i] = mark;
          break;
        }
      }
    }
    char line[160];
    std::snprintf(line, sizeof(line), "%-16s |%s|\n", actor.c_str(), bar.c_str());
    out += line;
  }
  return out;
}

}  // namespace cloudburst::trace
