// Run tracing.
//
// When a Tracer is attached to a run (RunOptions::tracer), the middleware
// records every scheduling-relevant event: job assignment, chunk fetch
// start/end, processing start/end, reduction-object shipments and merges,
// pool refills, failures, and elastic activations. The trace supports
//  * machine consumption — one JSON object per line (to_jsonl),
//  * eyeballing — an ASCII Gantt chart per node (render_gantt),
//  * tests — counting and pairing events is how the suite audits the
//    middleware's behavior beyond aggregate timings.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cloudburst::trace {

enum class EventKind : std::uint8_t {
  JobAssigned,    ///< actor = slave, a = chunk id
  FetchStart,     ///< actor = slave, a = chunk id, b = store id
  FetchEnd,       ///< actor = slave, a = chunk id
  ProcessStart,   ///< actor = slave, a = chunk id
  ProcessEnd,     ///< actor = slave, a = chunk id
  RobjSent,       ///< actor = sender, a = bytes
  RobjMerged,     ///< actor = merger
  BatchRequested, ///< actor = master, a = want
  BatchGranted,   ///< actor = master, a = jobs granted, b = exhausted flag
  SlaveFailed,    ///< actor = slave
  InstanceActivated,  ///< actor = slave
  CacheHit,       ///< actor = slave, a = chunk id, b = resident bytes
  CacheMiss,      ///< actor = slave, a = chunk id, b = store id
  CacheEvict,     ///< actor = slave or prefetcher, a = chunk id, b = bytes
  PrefetchIssued, ///< actor = prefetcher, a = chunk id, b = bytes
  PrefetchWasted, ///< actor = prefetcher, a = chunk id, b = bytes
  StoreFault,     ///< actor = fetching actor, a = chunk id, b = attempt
  RetryBackoff,   ///< actor = fetching actor, a = chunk id, b = next attempt
  HedgeIssued,    ///< actor = fetching actor, a = chunk id, b = attempt
  HedgeWon,       ///< actor = fetching actor, a = chunk id, b = attempt
  RunEnd,         ///< actor = head
  // Workload-level job lifecycle (actor = job name, a = job id):
  JobSubmitted,   ///< job entered the workload queue
  JobStarted,     ///< job's actors launched on the platform
  JobPreempted,   ///< job lost a core slot to a higher-priority job (b = winner)
  JobFinished,    ///< job's global reduction completed
  // Node lifecycle (crash / drain / spot reclamation):
  NodeDrainRequested,  ///< actor = slave, a = notice seconds, b = 1 for spot reclaim
  NodeVacated,         ///< actor = slave, a = chunks still checkpoint-covered, b = checkpoint bytes
  NodeReclaimed,       ///< actor = slave (hard-killed at the reclaim deadline)
  CheckpointFlushed,   ///< actor = master, a = chunks newly protected, b = robj bytes
  JobMigrated,         ///< actor = replacement slave, a = site of the lost node
  // Chunk replication (actor = "replica" or the fetching actor):
  ReplicaCreated,      ///< a = chunk id, b = store id (initial placement copy)
  ReplicaLost,         ///< a = chunk id, b = store id (copy marked dead)
  ReplicaRepaired,     ///< a = chunk id, b = store id (repair transfer landed)
  // Store QoS (RunOptions::qos):
  QosThrottled,        ///< actor = fetching actor, a = chunk id, b = store id
  ReservationGranted,  ///< actor = "qos", a = store id, b = bytes/sec
  ReservationRejected, ///< actor = "qos", a = store id, b = bytes/sec
  // Dynamic control plane (service directory + elastic node pool):
  NodeRegistered,      ///< actor = service name, a = site, b = 0 node / 1 store / 2 site
  NodeRetired,         ///< actor = service name, a = site, b = 0 node / 1 store / 2 site
  LeaseGranted,        ///< actor = node name, a = job id, b = 1 for a cold boot
  LeaseReturned,       ///< actor = node name, a = job id, b = leases still active
  JobRejected,         ///< actor = job name, a = job id, b = quota reason (QuotaReject)
  // Chaos windows (scripted WAN / site fault injection):
  LinkDown,            ///< actor = "chaos", a = link id, b = capacity permille
  LinkRestored,        ///< actor = "chaos", a = link id
  StoreOffline,        ///< actor = "chaos", a = store id
  StoreOnline,         ///< actor = "chaos", a = store id
  SiteOutage,          ///< actor = "chaos", a = site, b = flows cancelled
  SiteRecovered,       ///< actor = "chaos", a = site
};

const char* to_string(EventKind kind);

struct Event {
  double t = 0.0;       ///< simulated seconds
  EventKind kind = EventKind::RunEnd;
  std::string actor;
  std::uint64_t a = 0;  ///< kind-specific payload (see EventKind comments)
  std::uint64_t b = 0;
};

class Tracer {
 public:
  void record(double t, EventKind kind, std::string actor, std::uint64_t a = 0,
              std::uint64_t b = 0);

  const std::vector<Event>& events() const { return events_; }
  std::size_t count(EventKind kind) const;
  void clear() { events_.clear(); }

  /// One JSON object per line: {"t":1.25,"kind":"FetchStart","actor":...}.
  std::string to_jsonl() const;

  /// ASCII Gantt: one row per actor that has Fetch/Process events;
  /// '.' idle, 'f' fetching over the WAN, 'c' fetching from the site cache,
  /// 'P' processing, '*' fetch and process overlapping (pipelined),
  /// '!' a store fault or retry backoff hit this bin.
  /// Workload traces add one lane per job ('-' queued, 'J' running, 'x' a
  /// preemption hit this bin); per-job actor prefixes ("job/node") give each
  /// job its own node lanes. Node-lifecycle markers outrank everything:
  /// 'D' drain requested, 'v' vacated, 'R' hard reclaim, 'M' migration lease.
  /// Replication marks share that rank: '+' replica created, '~' replica
  /// lost, 'r' replica repaired. Control-plane marks likewise: '>' service
  /// registered, '<' service retired, 'L' pool lease granted, '=' lease
  /// returned, '#' job rejected by an admission quota. Chaos marks: 'W' a
  /// WAN link went down/degraded, 'w' it was restored, 'S' a store went
  /// offline, 's' it came back, 'O' a site outage began, 'o' the site
  /// recovered.
  std::string render_gantt(std::size_t width = 80) const;

 private:
  std::vector<Event> events_;
};

}  // namespace cloudburst::trace
