file(REMOVE_RECURSE
  "libcb_storage.a"
)
