# Empty compiler generated dependencies file for cb_storage.
# This may be replaced when dependencies are built.
