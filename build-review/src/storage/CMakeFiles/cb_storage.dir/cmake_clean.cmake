file(REMOVE_RECURSE
  "CMakeFiles/cb_storage.dir/data_layout.cpp.o"
  "CMakeFiles/cb_storage.dir/data_layout.cpp.o.d"
  "CMakeFiles/cb_storage.dir/local_store.cpp.o"
  "CMakeFiles/cb_storage.dir/local_store.cpp.o.d"
  "CMakeFiles/cb_storage.dir/object_store.cpp.o"
  "CMakeFiles/cb_storage.dir/object_store.cpp.o.d"
  "libcb_storage.a"
  "libcb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
