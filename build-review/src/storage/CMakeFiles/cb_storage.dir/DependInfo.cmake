
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/data_layout.cpp" "src/storage/CMakeFiles/cb_storage.dir/data_layout.cpp.o" "gcc" "src/storage/CMakeFiles/cb_storage.dir/data_layout.cpp.o.d"
  "/root/repo/src/storage/local_store.cpp" "src/storage/CMakeFiles/cb_storage.dir/local_store.cpp.o" "gcc" "src/storage/CMakeFiles/cb_storage.dir/local_store.cpp.o.d"
  "/root/repo/src/storage/object_store.cpp" "src/storage/CMakeFiles/cb_storage.dir/object_store.cpp.o" "gcc" "src/storage/CMakeFiles/cb_storage.dir/object_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/net/CMakeFiles/cb_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/des/CMakeFiles/cb_des.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/cb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
