file(REMOVE_RECURSE
  "CMakeFiles/cb_middleware.dir/head_node.cpp.o"
  "CMakeFiles/cb_middleware.dir/head_node.cpp.o.d"
  "CMakeFiles/cb_middleware.dir/iterative.cpp.o"
  "CMakeFiles/cb_middleware.dir/iterative.cpp.o.d"
  "CMakeFiles/cb_middleware.dir/master_node.cpp.o"
  "CMakeFiles/cb_middleware.dir/master_node.cpp.o.d"
  "CMakeFiles/cb_middleware.dir/runtime.cpp.o"
  "CMakeFiles/cb_middleware.dir/runtime.cpp.o.d"
  "CMakeFiles/cb_middleware.dir/scheduler.cpp.o"
  "CMakeFiles/cb_middleware.dir/scheduler.cpp.o.d"
  "CMakeFiles/cb_middleware.dir/slave_node.cpp.o"
  "CMakeFiles/cb_middleware.dir/slave_node.cpp.o.d"
  "libcb_middleware.a"
  "libcb_middleware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_middleware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
