# Empty dependencies file for cb_middleware.
# This may be replaced when dependencies are built.
