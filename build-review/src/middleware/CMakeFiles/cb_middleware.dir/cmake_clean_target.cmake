file(REMOVE_RECURSE
  "libcb_middleware.a"
)
