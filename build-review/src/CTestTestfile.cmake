# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("des")
subdirs("net")
subdirs("storage")
subdirs("cluster")
subdirs("api")
subdirs("engine")
subdirs("middleware")
subdirs("cost")
subdirs("trace")
subdirs("io")
subdirs("apps")
