# Empty dependencies file for cb_cluster.
# This may be replaced when dependencies are built.
