file(REMOVE_RECURSE
  "CMakeFiles/cb_cluster.dir/instance_types.cpp.o"
  "CMakeFiles/cb_cluster.dir/instance_types.cpp.o.d"
  "CMakeFiles/cb_cluster.dir/platform.cpp.o"
  "CMakeFiles/cb_cluster.dir/platform.cpp.o.d"
  "libcb_cluster.a"
  "libcb_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
