file(REMOVE_RECURSE
  "libcb_cluster.a"
)
