file(REMOVE_RECURSE
  "CMakeFiles/cb_apps.dir/datagen.cpp.o"
  "CMakeFiles/cb_apps.dir/datagen.cpp.o.d"
  "CMakeFiles/cb_apps.dir/experiments.cpp.o"
  "CMakeFiles/cb_apps.dir/experiments.cpp.o.d"
  "CMakeFiles/cb_apps.dir/kmeans.cpp.o"
  "CMakeFiles/cb_apps.dir/kmeans.cpp.o.d"
  "CMakeFiles/cb_apps.dir/knn.cpp.o"
  "CMakeFiles/cb_apps.dir/knn.cpp.o.d"
  "CMakeFiles/cb_apps.dir/pagerank.cpp.o"
  "CMakeFiles/cb_apps.dir/pagerank.cpp.o.d"
  "CMakeFiles/cb_apps.dir/wordcount.cpp.o"
  "CMakeFiles/cb_apps.dir/wordcount.cpp.o.d"
  "libcb_apps.a"
  "libcb_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
