file(REMOVE_RECURSE
  "CMakeFiles/cb_io.dir/dataset_io.cpp.o"
  "CMakeFiles/cb_io.dir/dataset_io.cpp.o.d"
  "CMakeFiles/cb_io.dir/file_engine.cpp.o"
  "CMakeFiles/cb_io.dir/file_engine.cpp.o.d"
  "libcb_io.a"
  "libcb_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
