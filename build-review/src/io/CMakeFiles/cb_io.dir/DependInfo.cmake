
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/dataset_io.cpp" "src/io/CMakeFiles/cb_io.dir/dataset_io.cpp.o" "gcc" "src/io/CMakeFiles/cb_io.dir/dataset_io.cpp.o.d"
  "/root/repo/src/io/file_engine.cpp" "src/io/CMakeFiles/cb_io.dir/file_engine.cpp.o" "gcc" "src/io/CMakeFiles/cb_io.dir/file_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/storage/CMakeFiles/cb_storage.dir/DependInfo.cmake"
  "/root/repo/build-review/src/engine/CMakeFiles/cb_engine.dir/DependInfo.cmake"
  "/root/repo/build-review/src/api/CMakeFiles/cb_api.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/cb_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/cb_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/des/CMakeFiles/cb_des.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
