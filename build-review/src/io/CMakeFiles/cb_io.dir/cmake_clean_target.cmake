file(REMOVE_RECURSE
  "libcb_io.a"
)
