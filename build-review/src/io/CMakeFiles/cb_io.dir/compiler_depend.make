# Empty compiler generated dependencies file for cb_io.
# This may be replaced when dependencies are built.
