file(REMOVE_RECURSE
  "CMakeFiles/cb_des.dir/simulator.cpp.o"
  "CMakeFiles/cb_des.dir/simulator.cpp.o.d"
  "libcb_des.a"
  "libcb_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
