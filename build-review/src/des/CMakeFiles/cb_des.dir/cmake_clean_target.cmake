file(REMOVE_RECURSE
  "libcb_des.a"
)
