# Empty compiler generated dependencies file for cb_des.
# This may be replaced when dependencies are built.
