# Empty dependencies file for cb_engine.
# This may be replaced when dependencies are built.
