file(REMOVE_RECURSE
  "CMakeFiles/cb_engine.dir/gr_engine.cpp.o"
  "CMakeFiles/cb_engine.dir/gr_engine.cpp.o.d"
  "CMakeFiles/cb_engine.dir/mr_engine.cpp.o"
  "CMakeFiles/cb_engine.dir/mr_engine.cpp.o.d"
  "libcb_engine.a"
  "libcb_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
