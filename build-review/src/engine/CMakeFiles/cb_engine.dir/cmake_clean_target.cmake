file(REMOVE_RECURSE
  "libcb_engine.a"
)
