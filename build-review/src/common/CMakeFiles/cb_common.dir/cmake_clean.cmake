file(REMOVE_RECURSE
  "CMakeFiles/cb_common.dir/config.cpp.o"
  "CMakeFiles/cb_common.dir/config.cpp.o.d"
  "CMakeFiles/cb_common.dir/logging.cpp.o"
  "CMakeFiles/cb_common.dir/logging.cpp.o.d"
  "CMakeFiles/cb_common.dir/rng.cpp.o"
  "CMakeFiles/cb_common.dir/rng.cpp.o.d"
  "CMakeFiles/cb_common.dir/stats.cpp.o"
  "CMakeFiles/cb_common.dir/stats.cpp.o.d"
  "CMakeFiles/cb_common.dir/table.cpp.o"
  "CMakeFiles/cb_common.dir/table.cpp.o.d"
  "CMakeFiles/cb_common.dir/thread_pool.cpp.o"
  "CMakeFiles/cb_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/cb_common.dir/units.cpp.o"
  "CMakeFiles/cb_common.dir/units.cpp.o.d"
  "libcb_common.a"
  "libcb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
