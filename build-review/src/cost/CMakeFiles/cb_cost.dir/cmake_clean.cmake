file(REMOVE_RECURSE
  "CMakeFiles/cb_cost.dir/cost_model.cpp.o"
  "CMakeFiles/cb_cost.dir/cost_model.cpp.o.d"
  "CMakeFiles/cb_cost.dir/planner.cpp.o"
  "CMakeFiles/cb_cost.dir/planner.cpp.o.d"
  "libcb_cost.a"
  "libcb_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
