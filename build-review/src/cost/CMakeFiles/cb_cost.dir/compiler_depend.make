# Empty compiler generated dependencies file for cb_cost.
# This may be replaced when dependencies are built.
