file(REMOVE_RECURSE
  "libcb_cost.a"
)
