# Empty compiler generated dependencies file for cb_api.
# This may be replaced when dependencies are built.
