file(REMOVE_RECURSE
  "libcb_api.a"
)
