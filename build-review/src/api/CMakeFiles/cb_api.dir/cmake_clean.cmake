file(REMOVE_RECURSE
  "CMakeFiles/cb_api.dir/combiners.cpp.o"
  "CMakeFiles/cb_api.dir/combiners.cpp.o.d"
  "libcb_api.a"
  "libcb_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
