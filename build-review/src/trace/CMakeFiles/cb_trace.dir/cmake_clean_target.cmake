file(REMOVE_RECURSE
  "libcb_trace.a"
)
