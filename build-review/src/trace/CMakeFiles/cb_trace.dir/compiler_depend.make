# Empty compiler generated dependencies file for cb_trace.
# This may be replaced when dependencies are built.
