file(REMOVE_RECURSE
  "CMakeFiles/cb_trace.dir/trace.cpp.o"
  "CMakeFiles/cb_trace.dir/trace.cpp.o.d"
  "libcb_trace.a"
  "libcb_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
