file(REMOVE_RECURSE
  "CMakeFiles/cb_net.dir/network.cpp.o"
  "CMakeFiles/cb_net.dir/network.cpp.o.d"
  "libcb_net.a"
  "libcb_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
