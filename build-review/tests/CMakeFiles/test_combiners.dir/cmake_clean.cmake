file(REMOVE_RECURSE
  "CMakeFiles/test_combiners.dir/test_combiners.cpp.o"
  "CMakeFiles/test_combiners.dir/test_combiners.cpp.o.d"
  "test_combiners"
  "test_combiners.pdb"
  "test_combiners[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_combiners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
