# Empty compiler generated dependencies file for test_combiners.
# This may be replaced when dependencies are built.
