file(REMOVE_RECURSE
  "CMakeFiles/test_dataset_io.dir/test_dataset_io.cpp.o"
  "CMakeFiles/test_dataset_io.dir/test_dataset_io.cpp.o.d"
  "test_dataset_io"
  "test_dataset_io.pdb"
  "test_dataset_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dataset_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
