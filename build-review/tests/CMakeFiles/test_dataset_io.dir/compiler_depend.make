# Empty compiler generated dependencies file for test_dataset_io.
# This may be replaced when dependencies are built.
