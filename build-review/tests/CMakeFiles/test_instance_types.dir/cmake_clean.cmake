file(REMOVE_RECURSE
  "CMakeFiles/test_instance_types.dir/test_instance_types.cpp.o"
  "CMakeFiles/test_instance_types.dir/test_instance_types.cpp.o.d"
  "test_instance_types"
  "test_instance_types.pdb"
  "test_instance_types[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_instance_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
