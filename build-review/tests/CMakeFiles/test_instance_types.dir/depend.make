# Empty dependencies file for test_instance_types.
# This may be replaced when dependencies are built.
