# Empty dependencies file for test_middleware.
# This may be replaced when dependencies are built.
