file(REMOVE_RECURSE
  "CMakeFiles/test_middleware.dir/test_middleware.cpp.o"
  "CMakeFiles/test_middleware.dir/test_middleware.cpp.o.d"
  "test_middleware"
  "test_middleware.pdb"
  "test_middleware[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_middleware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
