# Empty compiler generated dependencies file for test_nsite.
# This may be replaced when dependencies are built.
