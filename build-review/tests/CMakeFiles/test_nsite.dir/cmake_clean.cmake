file(REMOVE_RECURSE
  "CMakeFiles/test_nsite.dir/test_nsite.cpp.o"
  "CMakeFiles/test_nsite.dir/test_nsite.cpp.o.d"
  "test_nsite"
  "test_nsite.pdb"
  "test_nsite[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nsite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
