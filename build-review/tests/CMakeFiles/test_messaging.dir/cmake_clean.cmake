file(REMOVE_RECURSE
  "CMakeFiles/test_messaging.dir/test_messaging.cpp.o"
  "CMakeFiles/test_messaging.dir/test_messaging.cpp.o.d"
  "test_messaging"
  "test_messaging.pdb"
  "test_messaging[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_messaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
