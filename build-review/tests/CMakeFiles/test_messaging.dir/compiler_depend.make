# Empty compiler generated dependencies file for test_messaging.
# This may be replaced when dependencies are built.
