# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/test_rng[1]_include.cmake")
include("/root/repo/build-review/tests/test_stats[1]_include.cmake")
include("/root/repo/build-review/tests/test_serialize[1]_include.cmake")
include("/root/repo/build-review/tests/test_common_misc[1]_include.cmake")
include("/root/repo/build-review/tests/test_thread_pool[1]_include.cmake")
include("/root/repo/build-review/tests/test_simulator[1]_include.cmake")
include("/root/repo/build-review/tests/test_network[1]_include.cmake")
include("/root/repo/build-review/tests/test_storage[1]_include.cmake")
include("/root/repo/build-review/tests/test_combiners[1]_include.cmake")
include("/root/repo/build-review/tests/test_engines[1]_include.cmake")
include("/root/repo/build-review/tests/test_apps[1]_include.cmake")
include("/root/repo/build-review/tests/test_scheduler[1]_include.cmake")
include("/root/repo/build-review/tests/test_platform[1]_include.cmake")
include("/root/repo/build-review/tests/test_middleware[1]_include.cmake")
include("/root/repo/build-review/tests/test_experiments[1]_include.cmake")
include("/root/repo/build-review/tests/test_cost[1]_include.cmake")
include("/root/repo/build-review/tests/test_fault_tolerance[1]_include.cmake")
include("/root/repo/build-review/tests/test_iterative[1]_include.cmake")
include("/root/repo/build-review/tests/test_messaging[1]_include.cmake")
include("/root/repo/build-review/tests/test_elastic[1]_include.cmake")
include("/root/repo/build-review/tests/test_trace[1]_include.cmake")
include("/root/repo/build-review/tests/test_dataset_io[1]_include.cmake")
include("/root/repo/build-review/tests/test_instance_types[1]_include.cmake")
include("/root/repo/build-review/tests/test_properties[1]_include.cmake")
include("/root/repo/build-review/tests/test_nsite[1]_include.cmake")
include("/root/repo/build-review/tests/test_compression[1]_include.cmake")
