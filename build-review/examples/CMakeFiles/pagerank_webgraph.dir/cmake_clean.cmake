file(REMOVE_RECURSE
  "CMakeFiles/pagerank_webgraph.dir/pagerank_webgraph.cpp.o"
  "CMakeFiles/pagerank_webgraph.dir/pagerank_webgraph.cpp.o.d"
  "pagerank_webgraph"
  "pagerank_webgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagerank_webgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
