# Empty dependencies file for pagerank_webgraph.
# This may be replaced when dependencies are built.
