file(REMOVE_RECURSE
  "CMakeFiles/cloud_bursting_knn.dir/cloud_bursting_knn.cpp.o"
  "CMakeFiles/cloud_bursting_knn.dir/cloud_bursting_knn.cpp.o.d"
  "cloud_bursting_knn"
  "cloud_bursting_knn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_bursting_knn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
