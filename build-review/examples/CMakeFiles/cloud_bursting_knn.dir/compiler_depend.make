# Empty compiler generated dependencies file for cloud_bursting_knn.
# This may be replaced when dependencies are built.
