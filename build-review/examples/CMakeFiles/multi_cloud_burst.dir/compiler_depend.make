# Empty compiler generated dependencies file for multi_cloud_burst.
# This may be replaced when dependencies are built.
