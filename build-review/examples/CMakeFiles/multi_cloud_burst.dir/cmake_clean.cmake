file(REMOVE_RECURSE
  "CMakeFiles/multi_cloud_burst.dir/multi_cloud_burst.cpp.o"
  "CMakeFiles/multi_cloud_burst.dir/multi_cloud_burst.cpp.o.d"
  "multi_cloud_burst"
  "multi_cloud_burst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_cloud_burst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
