# Empty dependencies file for hybrid_kmeans.
# This may be replaced when dependencies are built.
