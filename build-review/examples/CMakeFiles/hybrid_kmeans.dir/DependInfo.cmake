
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/hybrid_kmeans.cpp" "examples/CMakeFiles/hybrid_kmeans.dir/hybrid_kmeans.cpp.o" "gcc" "examples/CMakeFiles/hybrid_kmeans.dir/hybrid_kmeans.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/apps/CMakeFiles/cb_apps.dir/DependInfo.cmake"
  "/root/repo/build-review/src/cost/CMakeFiles/cb_cost.dir/DependInfo.cmake"
  "/root/repo/build-review/src/io/CMakeFiles/cb_io.dir/DependInfo.cmake"
  "/root/repo/build-review/src/middleware/CMakeFiles/cb_middleware.dir/DependInfo.cmake"
  "/root/repo/build-review/src/cluster/CMakeFiles/cb_cluster.dir/DependInfo.cmake"
  "/root/repo/build-review/src/storage/CMakeFiles/cb_storage.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/cb_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/des/CMakeFiles/cb_des.dir/DependInfo.cmake"
  "/root/repo/build-review/src/engine/CMakeFiles/cb_engine.dir/DependInfo.cmake"
  "/root/repo/build-review/src/api/CMakeFiles/cb_api.dir/DependInfo.cmake"
  "/root/repo/build-review/src/trace/CMakeFiles/cb_trace.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/cb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
