file(REMOVE_RECURSE
  "CMakeFiles/hybrid_kmeans.dir/hybrid_kmeans.cpp.o"
  "CMakeFiles/hybrid_kmeans.dir/hybrid_kmeans.cpp.o.d"
  "hybrid_kmeans"
  "hybrid_kmeans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_kmeans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
