file(REMOVE_RECURSE
  "CMakeFiles/data_organizer.dir/data_organizer.cpp.o"
  "CMakeFiles/data_organizer.dir/data_organizer.cpp.o.d"
  "data_organizer"
  "data_organizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_organizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
