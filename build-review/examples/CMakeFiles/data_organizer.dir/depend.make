# Empty dependencies file for data_organizer.
# This may be replaced when dependencies are built.
