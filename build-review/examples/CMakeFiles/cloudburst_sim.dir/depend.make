# Empty dependencies file for cloudburst_sim.
# This may be replaced when dependencies are built.
