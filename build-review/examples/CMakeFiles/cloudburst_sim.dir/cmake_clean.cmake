file(REMOVE_RECURSE
  "CMakeFiles/cloudburst_sim.dir/cloudburst_sim.cpp.o"
  "CMakeFiles/cloudburst_sim.dir/cloudburst_sim.cpp.o.d"
  "cloudburst_sim"
  "cloudburst_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudburst_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
