# Empty compiler generated dependencies file for ablation_connections.
# This may be replaced when dependencies are built.
