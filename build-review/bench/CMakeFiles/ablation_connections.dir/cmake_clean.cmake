file(REMOVE_RECURSE
  "CMakeFiles/ablation_connections.dir/ablation_connections.cpp.o"
  "CMakeFiles/ablation_connections.dir/ablation_connections.cpp.o.d"
  "ablation_connections"
  "ablation_connections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_connections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
