# Empty dependencies file for table1_jobs.
# This may be replaced when dependencies are built.
