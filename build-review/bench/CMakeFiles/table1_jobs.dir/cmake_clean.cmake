file(REMOVE_RECURSE
  "CMakeFiles/table1_jobs.dir/table1_jobs.cpp.o"
  "CMakeFiles/table1_jobs.dir/table1_jobs.cpp.o.d"
  "table1_jobs"
  "table1_jobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_jobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
