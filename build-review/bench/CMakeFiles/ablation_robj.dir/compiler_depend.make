# Empty compiler generated dependencies file for ablation_robj.
# This may be replaced when dependencies are built.
