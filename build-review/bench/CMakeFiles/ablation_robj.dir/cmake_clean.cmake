file(REMOVE_RECURSE
  "CMakeFiles/ablation_robj.dir/ablation_robj.cpp.o"
  "CMakeFiles/ablation_robj.dir/ablation_robj.cpp.o.d"
  "ablation_robj"
  "ablation_robj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_robj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
