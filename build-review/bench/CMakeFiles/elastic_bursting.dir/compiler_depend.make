# Empty compiler generated dependencies file for elastic_bursting.
# This may be replaced when dependencies are built.
