file(REMOVE_RECURSE
  "CMakeFiles/elastic_bursting.dir/elastic_bursting.cpp.o"
  "CMakeFiles/elastic_bursting.dir/elastic_bursting.cpp.o.d"
  "elastic_bursting"
  "elastic_bursting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elastic_bursting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
