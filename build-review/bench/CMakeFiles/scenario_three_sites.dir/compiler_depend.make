# Empty compiler generated dependencies file for scenario_three_sites.
# This may be replaced when dependencies are built.
