file(REMOVE_RECURSE
  "CMakeFiles/scenario_three_sites.dir/scenario_three_sites.cpp.o"
  "CMakeFiles/scenario_three_sites.dir/scenario_three_sites.cpp.o.d"
  "scenario_three_sites"
  "scenario_three_sites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_three_sites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
