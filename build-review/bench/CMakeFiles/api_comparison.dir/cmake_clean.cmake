file(REMOVE_RECURSE
  "CMakeFiles/api_comparison.dir/api_comparison.cpp.o"
  "CMakeFiles/api_comparison.dir/api_comparison.cpp.o.d"
  "api_comparison"
  "api_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/api_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
