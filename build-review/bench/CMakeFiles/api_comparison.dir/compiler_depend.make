# Empty compiler generated dependencies file for api_comparison.
# This may be replaced when dependencies are built.
