file(REMOVE_RECURSE
  "CMakeFiles/iterative_apps.dir/iterative_apps.cpp.o"
  "CMakeFiles/iterative_apps.dir/iterative_apps.cpp.o.d"
  "iterative_apps"
  "iterative_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iterative_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
