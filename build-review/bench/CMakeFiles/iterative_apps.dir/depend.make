# Empty dependencies file for iterative_apps.
# This may be replaced when dependencies are built.
