# Empty dependencies file for instance_types.
# This may be replaced when dependencies are built.
