file(REMOVE_RECURSE
  "CMakeFiles/instance_types.dir/instance_types.cpp.o"
  "CMakeFiles/instance_types.dir/instance_types.cpp.o.d"
  "instance_types"
  "instance_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instance_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
