# Empty dependencies file for scenario_two_providers.
# This may be replaced when dependencies are built.
