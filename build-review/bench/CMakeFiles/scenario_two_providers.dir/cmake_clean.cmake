file(REMOVE_RECURSE
  "CMakeFiles/scenario_two_providers.dir/scenario_two_providers.cpp.o"
  "CMakeFiles/scenario_two_providers.dir/scenario_two_providers.cpp.o.d"
  "scenario_two_providers"
  "scenario_two_providers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_two_providers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
