file(REMOVE_RECURSE
  "CMakeFiles/ablation_wan.dir/ablation_wan.cpp.o"
  "CMakeFiles/ablation_wan.dir/ablation_wan.cpp.o.d"
  "ablation_wan"
  "ablation_wan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
