# Empty dependencies file for ablation_wan.
# This may be replaced when dependencies are built.
