file(REMOVE_RECURSE
  "CMakeFiles/table2_slowdowns.dir/table2_slowdowns.cpp.o"
  "CMakeFiles/table2_slowdowns.dir/table2_slowdowns.cpp.o.d"
  "table2_slowdowns"
  "table2_slowdowns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_slowdowns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
