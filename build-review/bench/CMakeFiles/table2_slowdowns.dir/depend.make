# Empty dependencies file for table2_slowdowns.
# This may be replaced when dependencies are built.
