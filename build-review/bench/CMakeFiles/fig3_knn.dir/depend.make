# Empty dependencies file for fig3_knn.
# This may be replaced when dependencies are built.
