file(REMOVE_RECURSE
  "CMakeFiles/fig3_knn.dir/fig3_knn.cpp.o"
  "CMakeFiles/fig3_knn.dir/fig3_knn.cpp.o.d"
  "fig3_knn"
  "fig3_knn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_knn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
