# Empty dependencies file for fig3_pagerank.
# This may be replaced when dependencies are built.
