file(REMOVE_RECURSE
  "CMakeFiles/fig3_pagerank.dir/fig3_pagerank.cpp.o"
  "CMakeFiles/fig3_pagerank.dir/fig3_pagerank.cpp.o.d"
  "fig3_pagerank"
  "fig3_pagerank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_pagerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
