file(REMOVE_RECURSE
  "CMakeFiles/fig3_kmeans.dir/fig3_kmeans.cpp.o"
  "CMakeFiles/fig3_kmeans.dir/fig3_kmeans.cpp.o.d"
  "fig3_kmeans"
  "fig3_kmeans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_kmeans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
