# Empty compiler generated dependencies file for fig3_kmeans.
# This may be replaced when dependencies are built.
