file(REMOVE_RECURSE
  "CMakeFiles/cost_tradeoff.dir/cost_tradeoff.cpp.o"
  "CMakeFiles/cost_tradeoff.dir/cost_tradeoff.cpp.o.d"
  "cost_tradeoff"
  "cost_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
