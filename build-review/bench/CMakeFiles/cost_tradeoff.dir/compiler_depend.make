# Empty compiler generated dependencies file for cost_tradeoff.
# This may be replaced when dependencies are built.
